#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "ag/ops.h"
#include "bench_util.h"
#include "io/lease.h"
#include "methods/common.h"
#include "methods/factory.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"

namespace tsg::bench {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(BenchConfigTest, DefaultsAndDerivedKnobs) {
  unsetenv("TSGBENCH_SCALE");
  unsetenv("TSGBENCH_SEED");
  setenv("TSGBENCH_OUT", "/tmp/tsg_bench_cfg_test", 1);
  const BenchConfig config = LoadConfig();
  EXPECT_DOUBLE_EQ(config.scale, 1.0);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_EQ(config.out_dir, "/tmp/tsg_bench_cfg_test");
  EXPECT_TRUE(std::filesystem::exists(config.out_dir));
  EXPECT_DOUBLE_EQ(config.dataset_scale(), 0.02);
  EXPECT_EQ(config.stochastic_repeats(), 2);
  std::filesystem::remove_all(config.out_dir);
}

TEST(BenchConfigTest, EnvOverridesApply) {
  setenv("TSGBENCH_SCALE", "2.5", 1);
  setenv("TSGBENCH_SEED", "123", 1);
  setenv("TSGBENCH_OUT", "/tmp/tsg_bench_cfg_test2", 1);
  const BenchConfig config = LoadConfig();
  EXPECT_DOUBLE_EQ(config.scale, 2.5);
  EXPECT_EQ(config.seed, 123u);
  EXPECT_EQ(config.stochastic_repeats(), 5);   // Paper-fidelity repeats at scale>=2.
  EXPECT_EQ(config.max_eval_samples(), 256);
  unsetenv("TSGBENCH_SCALE");
  unsetenv("TSGBENCH_SEED");
  unsetenv("TSGBENCH_OUT");
  std::filesystem::remove_all("/tmp/tsg_bench_cfg_test2");
}

TEST(PrepareDatasetTest, CapsLongWindowDatasets) {
  BenchConfig config;
  config.out_dir = "/tmp/tsg_bench_prep_test";
  const auto boiler = PrepareDataset(data::DatasetId::kBoiler, config);
  // Boiler (l=192) is capped near 176 windows at scale 1.
  EXPECT_LE(boiler.train.num_samples() + boiler.test.num_samples(), 200);
  EXPECT_EQ(boiler.train.seq_len(), 192);
  std::filesystem::remove_all(config.out_dir);
}

TEST(ToCellsTest, FiltersMeasuresAndDedupesTime) {
  const std::vector<GridRow> rows = {
      {"A", "d1", "MDD", 0.1, 0.0, 3.0},
      {"A", "d1", "ACD", 0.2, 0.0, 3.0},
      {"B", "d1", "MDD", 0.3, 0.0, 5.0},
      {"B", "d1", "ACD", 0.4, 0.0, 5.0},
  };
  const auto cells = ToCells(rows, {"MDD", "Time"});
  // 2 MDD cells + 2 deduplicated Time cells.
  ASSERT_EQ(cells.size(), 4u);
  int time_cells = 0;
  for (const auto& c : cells) {
    if (c.measure == "Time") {
      ++time_cells;
      EXPECT_EQ(c.mean, c.method == "A" ? 3.0 : 5.0);
    }
  }
  EXPECT_EQ(time_cells, 2);
}

TEST(DistinctTest, PreservesFirstSeenOrder) {
  const std::vector<GridRow> rows = {
      {"A", "d2", "MDD", 0, 0, 0},
      {"A", "d1", "ACD", 0, 0, 0},
      {"A", "d2", "ACD", 0, 0, 0},
  };
  const auto measures = DistinctMeasures(rows);
  ASSERT_EQ(measures.size(), 2u);
  EXPECT_EQ(measures[0], "MDD");
  EXPECT_EQ(measures[1], "ACD");
  const auto datasets = DistinctDatasets(rows);
  ASSERT_EQ(datasets.size(), 2u);
  EXPECT_EQ(datasets[0], "d2");
}

TEST(GridCacheTest, RoundTripsThroughCsv) {
  BenchConfig config;
  config.out_dir = "/tmp/tsg_bench_cache_test";
  config.scale = 0.31;  // Unique cache key for this test.
  std::filesystem::create_directories(config.out_dir);

  // Seed the cache by computing a 1x1 grid with a minimal budget.
  BenchConfig tiny = config;
  const std::vector<std::string> methods = {"TimeVAE"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg};
  const auto grid = LoadOrComputeGrid(tiny, methods, datasets, /*force=*/true);
  ASSERT_FALSE(grid.rows.empty());
  EXPECT_TRUE(grid.failures.empty());

  // Second call must hit the cache and return identical values.
  const auto cached = LoadOrComputeGrid(tiny, methods, datasets, /*force=*/false);
  ASSERT_EQ(cached.rows.size(), grid.rows.size());
  for (size_t i = 0; i < grid.rows.size(); ++i) {
    EXPECT_EQ(cached.rows[i].method, grid.rows[i].method);
    EXPECT_EQ(cached.rows[i].measure, grid.rows[i].measure);
    EXPECT_NEAR(cached.rows[i].mean, grid.rows[i].mean, 1e-6);
  }
  std::filesystem::remove_all(config.out_dir);
}

// ---- Fault injection (ISSUE acceptance): a method whose training loss goes NaN
// must surface as a per-cell error record, while every other cell of the grid
// matches a clean run bit-for-bit. ----

/// Goes through the real GuardedStep path with a NaN loss, exactly as a diverged
/// training run would.
class FaultyNaNMethod : public core::TsgMethod {
 public:
  Status Fit(const core::Dataset& train, const core::FitOptions& options) override {
    (void)train;
    (void)options;
    ag::Var w = ag::Var::Parameter(linalg::Matrix(1, 1));
    nn::Sgd opt({w}, 0.1);
    linalg::Matrix poison(1, 1);
    poison(0, 0) = std::numeric_limits<double>::quiet_NaN();
    const ag::Var loss = ag::Mul(w, ag::Var::Constant(poison));
    return methods::GuardedStep(opt, loss, 5.0, {"FaultyNaN", "train", 3});
  }
  std::vector<linalg::Matrix> Generate(int64_t count, Rng& rng) const override {
    (void)count;
    (void)rng;
    return {};
  }
  std::string name() const override { return "FaultyNaN"; }
};

TEST(GridFaultToleranceTest, NanLossBecomesCellErrorAndOtherCellsMatchCleanRun) {
  methods::RegisterMethod("FaultyNaN",
                          [] { return std::make_unique<FaultyNaNMethod>(); });
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg};

  BenchConfig clean;
  clean.scale = 0.2;
  clean.out_dir = "/tmp/tsg_bench_fault_clean";
  std::filesystem::remove_all(clean.out_dir);
  std::filesystem::create_directories(clean.out_dir);
  const auto clean_grid = RunGrid(clean, {"TimeVAE"}, datasets);
  ASSERT_TRUE(clean_grid.failures.empty());
  ASSERT_FALSE(clean_grid.rows.empty());

  BenchConfig faulty = clean;
  faulty.out_dir = "/tmp/tsg_bench_fault_injected";
  std::filesystem::remove_all(faulty.out_dir);
  std::filesystem::create_directories(faulty.out_dir);
  const auto grid = RunGrid(faulty, {"TimeVAE", "FaultyNaN"}, datasets);

  // The injected cell failed, with full method/phase/epoch context.
  ASSERT_EQ(grid.failures.size(), 1u);
  EXPECT_EQ(grid.failures[0].method, "FaultyNaN");
  EXPECT_NE(grid.failures[0].error.find("NUMERICAL_ERROR"), std::string::npos)
      << grid.failures[0].error;
  EXPECT_NE(grid.failures[0].error.find("non-finite loss"), std::string::npos)
      << grid.failures[0].error;
  EXPECT_NE(grid.failures[0].error.find("epoch 3"), std::string::npos)
      << grid.failures[0].error;

  // Every healthy cell is bit-identical to the clean run.
  ASSERT_EQ(grid.rows.size(), clean_grid.rows.size());
  for (size_t i = 0; i < grid.rows.size(); ++i) {
    EXPECT_EQ(grid.rows[i].method, clean_grid.rows[i].method);
    EXPECT_EQ(grid.rows[i].measure, clean_grid.rows[i].measure);
    EXPECT_EQ(std::memcmp(&grid.rows[i].mean, &clean_grid.rows[i].mean,
                          sizeof(double)),
              0)
        << grid.rows[i].measure;
    EXPECT_EQ(std::memcmp(&grid.rows[i].stddev, &clean_grid.rows[i].stddev,
                          sizeof(double)),
              0)
        << grid.rows[i].measure;
  }

  // The summary artifact records both cells.
  const std::string summary = ReadWholeFile(GridSummaryPath(faulty));
  EXPECT_NE(summary.find("\"status\":\"error\""), std::string::npos) << summary;
  EXPECT_NE(summary.find("\"status\":\"ok\""), std::string::npos) << summary;

  std::filesystem::remove_all(clean.out_dir);
  std::filesystem::remove_all(faulty.out_dir);
}

// ---- Kill/resume (ISSUE acceptance): a grid interrupted after some cells and
// restarted must produce a byte-identical summary artifact, without recomputing
// the completed cells. ----

TEST(GridResumeTest, InterruptedGridResumesByteIdentical) {
  const std::vector<std::string> methods = {"TimeVAE"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg,
                                                 data::DatasetId::kStock};

  BenchConfig clean;
  clean.scale = 0.2;
  clean.out_dir = "/tmp/tsg_bench_resume_clean";
  std::filesystem::remove_all(clean.out_dir);
  std::filesystem::create_directories(clean.out_dir);
  const auto clean_grid = RunGrid(clean, methods, datasets);
  ASSERT_TRUE(clean_grid.failures.empty());

  // Simulate a run killed after completing only the first dataset's cell: the
  // checkpoint for (TimeVAE, dlg) lands on disk, the rest never runs.
  BenchConfig resumed = clean;
  resumed.out_dir = "/tmp/tsg_bench_resume_killed";
  std::filesystem::remove_all(resumed.out_dir);
  std::filesystem::create_directories(resumed.out_dir);
  const auto partial = RunGrid(resumed, methods, {data::DatasetId::kDlg});
  ASSERT_TRUE(partial.failures.empty());
  ASSERT_FALSE(partial.rows.empty());

  // Restart with the full grid: the completed cell loads from its checkpoint.
  const auto full = RunGrid(resumed, methods, datasets);
  ASSERT_TRUE(full.failures.empty());
  ASSERT_EQ(full.rows.size(), clean_grid.rows.size());

  // The checkpointed cell was not recomputed: its wall-clock fit time survives
  // the CSV round trip bit-for-bit (a recompute would give a new timing).
  for (const auto& row : full.rows) {
    if (row.dataset == partial.rows.front().dataset) {
      EXPECT_EQ(std::memcmp(&row.fit_seconds, &partial.rows.front().fit_seconds,
                            sizeof(double)),
                0);
    }
  }

  // The summary artifact is byte-identical to the uninterrupted run's.
  const std::string clean_summary = ReadWholeFile(GridSummaryPath(clean));
  const std::string resumed_summary = ReadWholeFile(GridSummaryPath(resumed));
  ASSERT_FALSE(clean_summary.empty());
  EXPECT_EQ(clean_summary, resumed_summary);

  std::filesystem::remove_all(clean.out_dir);
  std::filesystem::remove_all(resumed.out_dir);
}

// ---- Sharded execution (ISSUE 8): lease-claimed workers and the supervisor
// merge must reproduce the single-process grid byte for byte, reclaim cells
// whose owner died, and surface error cells through the merge. ----

/// Returns the value of a global counter (0 when it does not exist yet).
int64_t CounterValue(const std::string& name) {
  return obs::MetricRegistry::Global().GetCounter(name).value();
}

/// The lease path RunGridShard uses for (TimeVAE, DLG) cells — both names are
/// filesystem-safe, so the mapping is the checkpoint path + ".lease".
std::string LeasePathFor(const BenchConfig& config, const std::string& method,
                         const std::string& dataset) {
  return CheckpointDir(config) + "/" + method + "__" + dataset + ".csv.lease";
}

/// A token whose pid is guaranteed dead on this host: a reaped fork child.
std::string DeadOwnerToken() {
  const pid_t child = fork();
  EXPECT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  EXPECT_EQ(waitpid(child, &wstatus, 0), child);
  char host[256] = {};
  EXPECT_EQ(gethostname(host, sizeof(host) - 1), 0);
  return std::string(host) + ":" + std::to_string(child) + ":dead";
}

TEST(ShardedGridTest, WorkerPlusStrictMergeMatchesSingleProcessByteForByte) {
  const std::vector<std::string> methods = {"TimeVAE"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg,
                                                 data::DatasetId::kStock};
  BenchConfig clean;
  clean.scale = 0.2;
  clean.out_dir = "/tmp/tsg_shard_clean";
  std::filesystem::remove_all(clean.out_dir);
  std::filesystem::create_directories(clean.out_dir);
  const auto clean_grid = RunGrid(clean, methods, datasets);
  ASSERT_TRUE(clean_grid.failures.empty());

  BenchConfig sharded = clean;
  sharded.out_dir = "/tmp/tsg_shard_worker";
  std::filesystem::remove_all(sharded.out_dir);
  std::filesystem::create_directories(sharded.out_dir);
  ShardOptions options;
  options.worker_label = "test-shard";
  const auto completed = RunGridShard(sharded, methods, datasets, options);
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  EXPECT_EQ(completed.value(), 2);

  // Strict merge: every cell must come from a worker checkpoint.
  MergeOptions merge_options;
  merge_options.compute_missing = false;
  const auto merged = MergeGridShards(sharded, methods, datasets, merge_options);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().rows.size(), clean_grid.rows.size());

  const std::string clean_summary = ReadWholeFile(GridSummaryPath(clean));
  const std::string merged_summary = ReadWholeFile(GridSummaryPath(sharded));
  ASSERT_FALSE(clean_summary.empty());
  EXPECT_EQ(clean_summary, merged_summary);

  // An overlapping second worker finds every cell checkpointed: zero computed.
  const auto again = RunGridShard(sharded, methods, datasets, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0);

  std::filesystem::remove_all(clean.out_dir);
  std::filesystem::remove_all(sharded.out_dir);
}

TEST(ShardedGridTest, DeadOwnersLeaseIsStolenAndCellReclaimed) {
  const std::vector<std::string> methods = {"TimeVAE"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg};
  BenchConfig config;
  config.scale = 0.2;
  config.out_dir = "/tmp/tsg_shard_reclaim";
  std::filesystem::remove_all(config.out_dir);
  std::filesystem::create_directories(CheckpointDir(config));

  // A worker died mid-cell: its lease survives, no checkpoint exists.
  const std::string lease = LeasePathFor(config, "TimeVAE", "DLG");
  ASSERT_TRUE(io::AcquireLease(lease, DeadOwnerToken()).value());

  const int64_t reclaimed_before = CounterValue("grid.cells.reclaimed");
  const int64_t stolen_before = CounterValue("grid.shard.leases.stolen");
  ShardOptions options;
  options.worker_label = "test-reclaim";
  const auto completed = RunGridShard(config, methods, datasets, options);
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  EXPECT_EQ(completed.value(), 1);
  EXPECT_EQ(CounterValue("grid.cells.reclaimed"), reclaimed_before + 1);
  EXPECT_EQ(CounterValue("grid.shard.leases.stolen"), stolen_before + 1);
  EXPECT_FALSE(std::filesystem::exists(lease));

  std::filesystem::remove_all(config.out_dir);
}

TEST(ShardedGridTest, LiveLeaseTimesOutWorkerAndBlocksMerge) {
  const std::vector<std::string> methods = {"TimeVAE"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg};
  BenchConfig config;
  config.scale = 0.2;
  config.out_dir = "/tmp/tsg_shard_live";
  std::filesystem::remove_all(config.out_dir);
  std::filesystem::create_directories(CheckpointDir(config));

  // Our own (live) pid holds the cell, as a healthy concurrent worker would.
  const std::string lease = LeasePathFor(config, "TimeVAE", "DLG");
  ASSERT_TRUE(io::AcquireLease(lease, io::LeaseOwnerToken()).value());

  ShardOptions options;
  options.worker_label = "test-live";
  options.max_wait_seconds = 0.2;
  options.poll_seconds = 0.02;
  const auto completed = RunGridShard(config, methods, datasets, options);
  ASSERT_FALSE(completed.ok());
  EXPECT_EQ(completed.status().code(), StatusCode::kFailedPrecondition);

  MergeOptions merge_options;
  const auto merged = MergeGridShards(config, methods, datasets, merge_options);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kFailedPrecondition);

  std::filesystem::remove_all(config.out_dir);
}

TEST(ShardedGridTest, StrictMergeFailsOnMissingCheckpoint) {
  const std::vector<std::string> methods = {"TimeVAE"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg};
  BenchConfig config;
  config.scale = 0.2;
  config.out_dir = "/tmp/tsg_shard_missing";
  std::filesystem::remove_all(config.out_dir);
  std::filesystem::create_directories(config.out_dir);

  MergeOptions options;
  options.compute_missing = false;
  const auto merged = MergeGridShards(config, methods, datasets, options);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kNotFound);

  std::filesystem::remove_all(config.out_dir);
}

TEST(ShardedGridTest, MergeComputesMissingCellsAndMatchesCleanRun) {
  const std::vector<std::string> methods = {"TimeVAE"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg};
  BenchConfig clean;
  clean.scale = 0.2;
  clean.out_dir = "/tmp/tsg_merge_clean";
  std::filesystem::remove_all(clean.out_dir);
  std::filesystem::create_directories(clean.out_dir);
  const auto clean_grid = RunGrid(clean, methods, datasets);
  ASSERT_TRUE(clean_grid.failures.empty());

  // No worker ran at all: the supervisor computes the whole grid itself. A
  // dangling dead lease on the cell must not stop it.
  BenchConfig merged_config = clean;
  merged_config.out_dir = "/tmp/tsg_merge_computes";
  std::filesystem::remove_all(merged_config.out_dir);
  std::filesystem::create_directories(CheckpointDir(merged_config));
  ASSERT_TRUE(io::AcquireLease(LeasePathFor(merged_config, "TimeVAE", "DLG"),
                               DeadOwnerToken())
                  .value());

  const int64_t reclaimed_before =
      CounterValue("grid.shard.merge.leases_reclaimed");
  MergeOptions options;
  options.compute_missing = true;
  const auto merged = MergeGridShards(merged_config, methods, datasets, options);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().rows.size(), clean_grid.rows.size());
  EXPECT_EQ(CounterValue("grid.shard.merge.leases_reclaimed"),
            reclaimed_before + 1);

  const std::string clean_summary = ReadWholeFile(GridSummaryPath(clean));
  const std::string merged_summary = ReadWholeFile(GridSummaryPath(merged_config));
  ASSERT_FALSE(clean_summary.empty());
  EXPECT_EQ(clean_summary, merged_summary);

  std::filesystem::remove_all(clean.out_dir);
  std::filesystem::remove_all(merged_config.out_dir);
}

TEST(ShardedGridTest, MergeCarriesErrorCellsFromWorkerCheckpoints) {
  static const bool registered = [] {
    methods::RegisterMethod("ShardFaulty",
                            [] { return std::make_unique<FaultyNaNMethod>(); });
    return true;
  }();
  (void)registered;

  const std::vector<std::string> methods = {"TimeVAE", "ShardFaulty"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg};
  BenchConfig config;
  config.scale = 0.2;
  config.out_dir = "/tmp/tsg_shard_errors";
  std::filesystem::remove_all(config.out_dir);
  std::filesystem::create_directories(config.out_dir);

  ShardOptions options;
  options.worker_label = "test-errors";
  const auto completed = RunGridShard(config, methods, datasets, options);
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  EXPECT_EQ(completed.value(), 2);  // The failing cell still checkpoints.

  MergeOptions merge_options;
  merge_options.compute_missing = false;
  const auto merged = MergeGridShards(config, methods, datasets, merge_options);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().failures.size(), 1u);
  EXPECT_EQ(merged.value().failures[0].method, "ShardFaulty");
  ASSERT_FALSE(merged.value().rows.empty());

  const std::string summary = ReadWholeFile(GridSummaryPath(config));
  EXPECT_NE(summary.find("\"status\":\"error\""), std::string::npos) << summary;
  EXPECT_NE(summary.find("\"status\":\"ok\""), std::string::npos) << summary;

  std::filesystem::remove_all(config.out_dir);
}

}  // namespace
}  // namespace tsg::bench
