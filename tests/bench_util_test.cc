#include <cstdlib>
#include <filesystem>

#include <gtest/gtest.h>

#include "bench_util.h"

namespace tsg::bench {
namespace {

TEST(BenchConfigTest, DefaultsAndDerivedKnobs) {
  unsetenv("TSGBENCH_SCALE");
  unsetenv("TSGBENCH_SEED");
  setenv("TSGBENCH_OUT", "/tmp/tsg_bench_cfg_test", 1);
  const BenchConfig config = LoadConfig();
  EXPECT_DOUBLE_EQ(config.scale, 1.0);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_EQ(config.out_dir, "/tmp/tsg_bench_cfg_test");
  EXPECT_TRUE(std::filesystem::exists(config.out_dir));
  EXPECT_DOUBLE_EQ(config.dataset_scale(), 0.02);
  EXPECT_EQ(config.stochastic_repeats(), 2);
  std::filesystem::remove_all(config.out_dir);
}

TEST(BenchConfigTest, EnvOverridesApply) {
  setenv("TSGBENCH_SCALE", "2.5", 1);
  setenv("TSGBENCH_SEED", "123", 1);
  setenv("TSGBENCH_OUT", "/tmp/tsg_bench_cfg_test2", 1);
  const BenchConfig config = LoadConfig();
  EXPECT_DOUBLE_EQ(config.scale, 2.5);
  EXPECT_EQ(config.seed, 123u);
  EXPECT_EQ(config.stochastic_repeats(), 5);   // Paper-fidelity repeats at scale>=2.
  EXPECT_EQ(config.max_eval_samples(), 256);
  unsetenv("TSGBENCH_SCALE");
  unsetenv("TSGBENCH_SEED");
  unsetenv("TSGBENCH_OUT");
  std::filesystem::remove_all("/tmp/tsg_bench_cfg_test2");
}

TEST(PrepareDatasetTest, CapsLongWindowDatasets) {
  BenchConfig config;
  config.out_dir = "/tmp/tsg_bench_prep_test";
  const auto boiler = PrepareDataset(data::DatasetId::kBoiler, config);
  // Boiler (l=192) is capped near 176 windows at scale 1.
  EXPECT_LE(boiler.train.num_samples() + boiler.test.num_samples(), 200);
  EXPECT_EQ(boiler.train.seq_len(), 192);
  std::filesystem::remove_all(config.out_dir);
}

TEST(ToCellsTest, FiltersMeasuresAndDedupesTime) {
  const std::vector<GridRow> rows = {
      {"A", "d1", "MDD", 0.1, 0.0, 3.0},
      {"A", "d1", "ACD", 0.2, 0.0, 3.0},
      {"B", "d1", "MDD", 0.3, 0.0, 5.0},
      {"B", "d1", "ACD", 0.4, 0.0, 5.0},
  };
  const auto cells = ToCells(rows, {"MDD", "Time"});
  // 2 MDD cells + 2 deduplicated Time cells.
  ASSERT_EQ(cells.size(), 4u);
  int time_cells = 0;
  for (const auto& c : cells) {
    if (c.measure == "Time") {
      ++time_cells;
      EXPECT_EQ(c.mean, c.method == "A" ? 3.0 : 5.0);
    }
  }
  EXPECT_EQ(time_cells, 2);
}

TEST(DistinctTest, PreservesFirstSeenOrder) {
  const std::vector<GridRow> rows = {
      {"A", "d2", "MDD", 0, 0, 0},
      {"A", "d1", "ACD", 0, 0, 0},
      {"A", "d2", "ACD", 0, 0, 0},
  };
  const auto measures = DistinctMeasures(rows);
  ASSERT_EQ(measures.size(), 2u);
  EXPECT_EQ(measures[0], "MDD");
  EXPECT_EQ(measures[1], "ACD");
  const auto datasets = DistinctDatasets(rows);
  ASSERT_EQ(datasets.size(), 2u);
  EXPECT_EQ(datasets[0], "d2");
}

TEST(GridCacheTest, RoundTripsThroughCsv) {
  BenchConfig config;
  config.out_dir = "/tmp/tsg_bench_cache_test";
  config.scale = 0.31;  // Unique cache key for this test.
  std::filesystem::create_directories(config.out_dir);

  // Seed the cache by computing a 1x1 grid with a minimal budget.
  BenchConfig tiny = config;
  const std::vector<std::string> methods = {"TimeVAE"};
  const std::vector<data::DatasetId> datasets = {data::DatasetId::kDlg};
  const auto rows = LoadOrComputeGrid(tiny, methods, datasets, /*force=*/true);
  ASSERT_FALSE(rows.empty());

  // Second call must hit the cache and return identical values.
  const auto cached = LoadOrComputeGrid(tiny, methods, datasets, /*force=*/false);
  ASSERT_EQ(cached.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(cached[i].method, rows[i].method);
    EXPECT_EQ(cached[i].measure, rows[i].measure);
    EXPECT_NEAR(cached[i].mean, rows[i].mean, 1e-6);
  }
  std::filesystem::remove_all(config.out_dir);
}

}  // namespace
}  // namespace tsg::bench
