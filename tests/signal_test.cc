#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "signal/acf.h"
#include "signal/fft.h"
#include "signal/stft.h"

namespace tsg::signal {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<double> RandomSignal(int64_t n, Rng& rng) {
  std::vector<double> x(static_cast<size_t>(n));
  for (auto& v : x) v = rng.Normal();
  return x;
}

class FftRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(FftRoundTripTest, ForwardInverseIsIdentity) {
  const int n = GetParam();
  Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
  const std::vector<Complex> orig = x;
  Fft(x, /*inverse=*/false);
  Fft(x, /*inverse=*/true);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 64, 128, 3, 5, 7, 12, 24, 125,
                                           168, 192, 97));

TEST(FftTest, MatchesNaiveDftOnArbitraryLength) {
  const int n = 13;
  Rng rng(1);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());

  // Naive O(n^2) DFT reference.
  std::vector<Complex> expected(n);
  for (int k = 0; k < n; ++k) {
    Complex s(0, 0);
    for (int t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * k * t / n;
      s += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
    expected[k] = s;
  }
  Fft(x, /*inverse=*/false);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), expected[k].real(), 1e-8);
    EXPECT_NEAR(x[k].imag(), expected[k].imag(), 1e-8);
  }
}

TEST(FftTest, PureToneHasSingleBin) {
  const int n = 64;
  std::vector<Complex> x(n);
  for (int t = 0; t < n; ++t) {
    const double angle = 2.0 * kPi * 5.0 * t / n;
    x[t] = Complex(std::cos(angle), std::sin(angle));
  }
  Fft(x, /*inverse=*/false);
  for (int k = 0; k < n; ++k) {
    if (k == 5) {
      EXPECT_NEAR(std::abs(x[k]), n, 1e-8);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-8);
    }
  }
}

TEST(RealDftTest, RoundTrip) {
  for (int n : {8, 24, 125, 128}) {
    Rng rng(n);
    const std::vector<double> x = RandomSignal(n, rng);
    const auto spec = RealDft(x);
    EXPECT_EQ(static_cast<int>(spec.size()), n / 2 + 1);
    const auto back = InverseRealDft(spec, n);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

class PackedDftTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedDftTest, RoundTripAndOrthonormality) {
  const int n = GetParam();
  Rng rng(n + 100);
  const std::vector<double> x = RandomSignal(n, rng);
  const auto packed = RealDftPacked(x);
  ASSERT_EQ(static_cast<int>(packed.size()), n);

  // Orthonormal: Parseval holds exactly (energy preserved).
  double ex = 0.0, ep = 0.0;
  for (double v : x) ex += v * v;
  for (double v : packed) ep += v * v;
  EXPECT_NEAR(ex, ep, 1e-8 * std::max(1.0, ex));

  const auto back = InverseRealDftPacked(packed);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, PackedDftTest,
                         ::testing::Values(2, 3, 8, 14, 24, 125, 128, 168, 192));

TEST(StftTest, RoundTripReconstruction) {
  for (int n : {64, 125, 192}) {
    Rng rng(n);
    const std::vector<double> x = RandomSignal(n, rng);
    const Stft stft = ComputeStft(x, /*n_fft=*/8, /*hop=*/4);
    const auto back = InverseStft(stft);
    ASSERT_EQ(back.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-8);
  }
}

TEST(StftTest, FrameAndBinCounts) {
  const std::vector<double> x(100, 1.0);
  const Stft stft = ComputeStft(x, 8, 4);
  EXPECT_EQ(stft.num_bins(), 5);
  EXPECT_GT(stft.num_frames(), 100 / 4 - 2);
}

TEST(StftTest, BandSplitPartitionsEnergy) {
  Rng rng(77);
  const std::vector<double> x = RandomSignal(128, rng);
  const Stft full = ComputeStft(x, 8, 4);
  const Stft low = BandSplit(full, 2, /*keep_low=*/true);
  const Stft high = BandSplit(full, 2, /*keep_low=*/false);
  for (int64_t f = 0; f < full.num_frames(); ++f) {
    for (int64_t k = 0; k < full.num_bins(); ++k) {
      const Complex sum = low.coeffs[f][k] + high.coeffs[f][k];
      EXPECT_NEAR(sum.real(), full.coeffs[f][k].real(), 1e-12);
      EXPECT_NEAR(sum.imag(), full.coeffs[f][k].imag(), 1e-12);
    }
  }
}

TEST(StftTest, LowBandOfSmoothSignalKeepsMostEnergy) {
  // A slow sinusoid should live almost entirely in the low bins.
  std::vector<double> x(128);
  for (int t = 0; t < 128; ++t) x[t] = std::sin(2.0 * kPi * t / 64.0);
  const Stft full = ComputeStft(x, 8, 4);
  const auto low = InverseStft(BandSplit(full, 2, /*keep_low=*/true));
  double err = 0.0, energy = 0.0;
  for (int t = 0; t < 128; ++t) {
    err += (low[t] - x[t]) * (low[t] - x[t]);
    energy += x[t] * x[t];
  }
  EXPECT_LT(err / energy, 0.05);
}

TEST(AcfTest, LagZeroIsOne) {
  Rng rng(5);
  const auto acf = Autocorrelation(RandomSignal(256, rng), 10);
  EXPECT_NEAR(acf[0], 1.0, 1e-12);
}

TEST(AcfTest, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> x(400);
  for (int t = 0; t < 400; ++t) x[t] = std::sin(2.0 * kPi * t / 20.0);
  const auto acf = Autocorrelation(x, 50);
  EXPECT_GT(acf[20], 0.9);
  EXPECT_LT(acf[10], 0.0);  // Anti-phase at half period.
}

TEST(AcfTest, WhiteNoiseDecorrelates) {
  Rng rng(6);
  const auto acf = Autocorrelation(RandomSignal(5000, rng), 5);
  for (int k = 1; k <= 5; ++k) EXPECT_LT(std::fabs(acf[k]), 0.05);
}

TEST(AcfTest, ConstantSeriesIsSafe) {
  const std::vector<double> x(100, 3.0);
  const auto acf = Autocorrelation(x, 5);
  EXPECT_NEAR(acf[0], 1.0, 1e-12);
  for (int k = 1; k <= 5; ++k) EXPECT_NEAR(acf[k], 0.0, 1e-12);
}

TEST(WindowLengthTest, FindsPeriodOfSine) {
  std::vector<double> x(600);
  for (int t = 0; t < 600; ++t) x[t] = std::sin(2.0 * kPi * t / 24.0);
  const int64_t l = SuggestWindowLength(x, 4, 64);
  EXPECT_NEAR(static_cast<double>(l), 24.0, 1.0);
}

TEST(WindowLengthTest, FallsBackOnNoise) {
  Rng rng(7);
  const auto x = RandomSignal(500, rng);
  const int64_t l = SuggestWindowLength(x, 16, 48);
  EXPECT_GE(l, 16);
  EXPECT_LE(l, 48);
}

}  // namespace
}  // namespace tsg::signal

namespace tsg::signal {
namespace {

TEST(PackedDftTest, LengthOneIsIdentity) {
  const std::vector<double> x = {3.5};
  const auto packed = RealDftPacked(x);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_NEAR(packed[0], 3.5, 1e-12);
  EXPECT_NEAR(InverseRealDftPacked(packed)[0], 3.5, 1e-12);
}

TEST(FftTest, EmptyIsNoop) {
  std::vector<Complex> x;
  Fft(x, false);
  EXPECT_TRUE(x.empty());
}

TEST(StftTest, RejectsBadParametersViaDeath) {
  const std::vector<double> x(32, 0.0);
  EXPECT_DEATH(ComputeStft(x, 1, 1), "TSG_CHECK");
  EXPECT_DEATH(ComputeStft(x, 8, 0), "TSG_CHECK");
  EXPECT_DEATH(ComputeStft(x, 8, 16), "TSG_CHECK");
}

}  // namespace
}  // namespace tsg::signal
