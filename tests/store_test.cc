#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/harness.h"
#include "core/method.h"
#include "data/simulators.h"
#include "methods/factory.h"
#include "nn/dense.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "store/artifact_store.h"
#include "store/serving_cache.h"

namespace tsg::store {
namespace {

using core::Dataset;
using core::FitOptions;
using core::GenRequest;
using core::MethodSnapshot;
using core::ModelKey;
using linalg::Matrix;

Dataset TinyDataset(int64_t count = 48, int64_t l = 16, int64_t n = 3) {
  return Dataset("tiny", data::SineBenchmark(count, l, n, /*seed=*/7));
}

FitOptions QuickFit() {
  FitOptions options;
  options.epoch_scale = 0.08;  // A handful of epochs: smoke-test budget.
  options.batch_size = 16;
  options.seed = 11;
  return options;
}

/// A fresh per-test store directory under the gtest temp root.
std::string TempStoreDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tsg_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ModelKey KeyFor(const core::TsgMethod& method, const Dataset& train,
                const FitOptions& fit) {
  ModelKey key;
  key.method = method.name();
  key.hyper_digest = method.HyperparameterDigest();
  key.dataset_fingerprint = train.Fingerprint();
  key.seed = fit.seed;
  key.epoch_scale = fit.epoch_scale;
  key.batch_size = fit.batch_size;
  return key;
}

bool SamplesBitEqual(const std::vector<Matrix>& a, const std::vector<Matrix>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].rows() != b[i].rows() || a[i].cols() != b[i].cols()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    sizeof(double) * static_cast<size_t>(a[i].size())) != 0) {
      return false;
    }
  }
  return true;
}

int64_t CounterValue(const char* name) {
  return obs::MetricRegistry::Global().GetCounter(name).value();
}

MethodSnapshot SmallSnapshot() {
  MethodSnapshot snap;
  snap.config = {{"seq_len", "16"}, {"num_features", "3"}};
  Matrix a(2, 3);
  for (int64_t i = 0; i < a.size(); ++i) a[i] = 0.125 * static_cast<double>(i);
  Matrix b(1, 4);
  b[0] = -1.5;
  b[1] = 3.25e-9;
  b[2] = 0.0;
  b[3] = 7.75e11;
  snap.params = {std::move(a), std::move(b)};
  return snap;
}

ModelKey SmallKey() {
  ModelKey key;
  key.method = "TimeVAE";
  key.hyper_digest = 0x1234;
  key.dataset_fingerprint = 0xabcd;
  key.seed = 11;
  key.epoch_scale = 0.08;
  key.batch_size = 16;
  return key;
}

// ---- Every method: fit -> publish -> load -> restore -> identical bytes. ----

class StoreMethodTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StoreMethodTest, SaveLoadRestoreGeneratesIdentically) {
  auto fitted = methods::CreateMethod(GetParam());
  ASSERT_TRUE(fitted.ok());
  const Dataset train = TinyDataset();
  const FitOptions fit = QuickFit();
  ASSERT_TRUE(fitted.value()->Fit(train, fit).ok());

  ArtifactStore store(TempStoreDir("roundtrip_" + GetParam()));
  const ModelKey key = KeyFor(*fitted.value(), train, fit);
  auto snapshot = fitted.value()->Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(store.Save(key, snapshot.value()).ok());

  auto loaded = store.Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto restored = methods::CreateMethod(GetParam());
  ASSERT_TRUE(restored.ok());
  const Status restore_status = restored.value()->Restore(loaded.value());
  ASSERT_TRUE(restore_status.ok()) << restore_status.ToString();

  Rng rng_a(123), rng_b(123);
  EXPECT_TRUE(SamplesBitEqual(fitted.value()->Generate(6, rng_a),
                              restored.value()->Generate(6, rng_b)));
}

TEST_P(StoreMethodTest, BatchedGenerateMatchesSequential) {
  auto method = methods::CreateMethod(GetParam());
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE(method.value()->Fit(TinyDataset(), QuickFit()).ok());

  // Odd split: repeated seeds, an empty request, unordered counts.
  const std::vector<GenRequest> requests = {
      {2, 5}, {3, 99}, {0, 7}, {1, 5}, {4, 42}};
  const auto batched = method.value()->GenerateBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t j = 0; j < requests.size(); ++j) {
    Rng rng(requests[j].seed);
    EXPECT_TRUE(SamplesBitEqual(
        batched[j], method.value()->Generate(requests[j].count, rng)))
        << GetParam() << " request " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, StoreMethodTest,
                         ::testing::ValuesIn(methods::AllMethodNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---- Artifact container integrity. ----

TEST(ArtifactStoreTest, LoadMissingIsNotFound) {
  ArtifactStore store(TempStoreDir("missing"));
  auto loaded = store.Load(SmallKey());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ArtifactStoreTest, SaveThenLoadRoundTripsSnapshot) {
  ArtifactStore store(TempStoreDir("roundtrip_unit"));
  const ModelKey key = SmallKey();
  const MethodSnapshot snap = SmallSnapshot();
  ASSERT_TRUE(store.Save(key, snap).ok());
  auto loaded = store.Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().config, snap.config);
  EXPECT_TRUE(SamplesBitEqual(loaded.value().params, snap.params));
}

TEST(ArtifactStoreTest, TruncatedArtifactFailsToLoad) {
  ArtifactStore store(TempStoreDir("truncated"));
  const ModelKey key = SmallKey();
  ASSERT_TRUE(store.Save(key, SmallSnapshot()).ok());
  const std::string path = store.PathFor(key);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 10);
  auto loaded = store.Load(key);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ArtifactStoreTest, BitFlipFailsChecksum) {
  ArtifactStore store(TempStoreDir("bitflip"));
  const ModelKey key = SmallKey();
  ASSERT_TRUE(store.Save(key, SmallSnapshot()).ok());
  const std::string path = store.PathFor(key);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  // Flip one bit near the end of the payload (inside a tensor value).
  file.seekg(0, std::ios::end);
  const auto size = file.tellg();
  file.seekg(static_cast<std::streamoff>(size) - 4);
  char c = 0;
  file.get(c);
  file.seekp(static_cast<std::streamoff>(size) - 4);
  file.put(static_cast<char>(c ^ 0x01));
  file.close();
  auto loaded = store.Load(key);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST(ArtifactStoreTest, TrailingGarbageFailsToLoad) {
  ArtifactStore store(TempStoreDir("trailing"));
  const ModelKey key = SmallKey();
  ASSERT_TRUE(store.Save(key, SmallSnapshot()).ok());
  {
    std::ofstream file(store.PathFor(key), std::ios::app | std::ios::binary);
    file << "extra bytes";
  }
  EXPECT_FALSE(store.Load(key).ok());
}

TEST(ArtifactStoreTest, KeyMismatchFailsEvenWithValidContainer) {
  ArtifactStore store(TempStoreDir("keymismatch"));
  const ModelKey key = SmallKey();
  ASSERT_TRUE(store.Save(key, SmallSnapshot()).ok());
  // Plant the valid artifact at a different key's address (stale or colliding
  // file); the header check must refuse it.
  ModelKey other = key;
  other.seed = 12;
  std::filesystem::copy_file(store.PathFor(key), store.PathFor(other));
  auto loaded = store.Load(other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("key mismatch"), std::string::npos);
}

TEST(ArtifactStoreTest, NonTokenConfigRefusesToSerialize) {
  MethodSnapshot snap = SmallSnapshot();
  snap.config.emplace_back("bad key", "value with spaces");
  ASSERT_FALSE(ArtifactStore::SerializeArtifact(SmallKey(), snap).ok());
}

TEST(ArtifactStoreTest, CorruptCounterTracksBadArtifacts) {
  ArtifactStore store(TempStoreDir("corrupt_counter"));
  const ModelKey key = SmallKey();
  ASSERT_TRUE(store.Save(key, SmallSnapshot()).ok());
  std::filesystem::resize_file(store.PathFor(key), 7);
  const int64_t before = CounterValue("store.corrupt");
  EXPECT_FALSE(store.Load(key).ok());
  EXPECT_EQ(CounterValue("store.corrupt"), before + 1);
}

// ---- Restore validation. ----

TEST(RestoreValidationTest, ConfigShapeMismatchFailsCleanly) {
  auto method = methods::CreateMethod("TimeVAE");
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE(method.value()->Fit(TinyDataset(), QuickFit()).ok());
  auto snapshot = method.value()->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  // Claim a different window length: the stored tensors no longer match the
  // rebuilt architecture, which must fail instead of loading garbage.
  for (auto& [k, v] : snapshot.value().config) {
    if (k == "seq_len") v = "12";
  }
  auto fresh = methods::CreateMethod("TimeVAE");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value()->Restore(snapshot.value()).ok());
}

TEST(RestoreValidationTest, TamperedParamShapeFailsCleanly) {
  auto method = methods::CreateMethod("LS4");
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE(method.value()->Fit(TinyDataset(), QuickFit()).ok());
  auto snapshot = method.value()->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  snapshot.value().params[0] = Matrix(1, 1);
  auto fresh = methods::CreateMethod("LS4");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value()->Restore(snapshot.value()).ok());
}

TEST(RestoreValidationTest, MissingConfigKeyFailsCleanly) {
  auto method = methods::CreateMethod("RGAN");
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE(method.value()->Fit(TinyDataset(), QuickFit()).ok());
  auto snapshot = method.value()->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  snapshot.value().config.clear();
  auto fresh = methods::CreateMethod("RGAN");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value()->Restore(snapshot.value()).ok());
}

// ---- Harness integration: warm cell skips Fit and scores identically. ----

TEST(HarnessStoreTest, SecondRunRestoresInsteadOfFitting) {
  const Dataset train = TinyDataset(48, 16, 2);
  const Dataset test("tiny_test", data::SineBenchmark(12, 16, 2, /*seed=*/8));

  core::HarnessOptions options;
  options.fit = QuickFit();
  options.stochastic_repeats = 2;
  options.max_eval_samples = 32;
  options.embedder.epochs = 2;
  ArtifactStore store(TempStoreDir("harness"));
  options.store = &store;
  core::Harness harness(options);

  const int64_t fits_before = CounterValue("harness.fit_calls");
  const int64_t restored_before = CounterValue("harness.store.restored");

  auto cold_method = methods::CreateMethod("TimeVAE");
  ASSERT_TRUE(cold_method.ok());
  auto cold = harness.RunMethod(*cold_method.value(), train, test);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(CounterValue("harness.fit_calls"), fits_before + 1);
  EXPECT_EQ(CounterValue("harness.store.restored"), restored_before);

  auto warm_method = methods::CreateMethod("TimeVAE");
  ASSERT_TRUE(warm_method.ok());
  auto warm = harness.RunMethod(*warm_method.value(), train, test);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(CounterValue("harness.fit_calls"), fits_before + 1);
  EXPECT_EQ(CounterValue("harness.store.restored"), restored_before + 1);
  EXPECT_EQ(warm.value().fit_seconds, 0.0);

  // The warm cell must score byte-identically to the cold one.
  ASSERT_EQ(warm.value().scores.size(), cold.value().scores.size());
  for (size_t i = 0; i < cold.value().scores.size(); ++i) {
    EXPECT_EQ(warm.value().scores[i].first, cold.value().scores[i].first);
    EXPECT_EQ(warm.value().scores[i].second.mean,
              cold.value().scores[i].second.mean);
    EXPECT_EQ(warm.value().scores[i].second.std,
              cold.value().scores[i].second.std);
  }
}

// ---- Serving cache. ----

TEST(ServingCacheTest, ServesBitIdenticalBatchesFromOneRestore) {
  auto method = methods::CreateMethod("LS4");
  ASSERT_TRUE(method.ok());
  const Dataset train = TinyDataset();
  const FitOptions fit = QuickFit();
  ASSERT_TRUE(method.value()->Fit(train, fit).ok());
  const ModelKey key = KeyFor(*method.value(), train, fit);

  ArtifactStore store(TempStoreDir("serving"));
  auto snapshot = method.value()->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(store.Save(key, snapshot.value()).ok());

  ServingCache cache(&store);
  const std::vector<GenRequest> requests = {{3, 17}, {2, 4}};
  auto first = cache.Generate(key, requests);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.Generate(key, requests);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.size(), 1u);  // One restore served both calls.

  ASSERT_EQ(first.value().size(), requests.size());
  for (size_t j = 0; j < requests.size(); ++j) {
    Rng rng(requests[j].seed);
    EXPECT_TRUE(SamplesBitEqual(
        first.value()[j], method.value()->Generate(requests[j].count, rng)));
    EXPECT_TRUE(SamplesBitEqual(first.value()[j], second.value()[j]));
  }
}

TEST(ServingCacheTest, MissingArtifactFailsWithNotFound) {
  ArtifactStore store(TempStoreDir("serving_missing"));
  ServingCache cache(&store);
  auto result = cache.Generate(SmallKey(), {{1, 1}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

/// One fitted model published under several distinct keys (the store records
/// the key per artifact, so the same snapshot serves as N cache entries of
/// equal size — ideal for deterministic LRU arithmetic).
class ServingCacheEvictionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto method = methods::CreateMethod("LS4");
    ASSERT_TRUE(method.ok());
    ASSERT_TRUE(method.value()->Fit(train_, fit_).ok());
    method_ = std::move(method.value());
    store_ = std::make_unique<ArtifactStore>(TempStoreDir("serving_lru"));
    auto snapshot = method_->Snapshot();
    ASSERT_TRUE(snapshot.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(store_->Save(NthKey(i), snapshot.value()).ok());
    }
  }

  ModelKey NthKey(int i) const {
    ModelKey key = KeyFor(*method_, train_, fit_);
    key.seed = fit_.seed + i;  // Distinct addresses, identical payloads.
    return key;
  }

  /// Estimated resident bytes of one model, measured on an unbounded cache.
  int64_t OneModelBytes() {
    ServingCache probe(store_.get(), /*max_bytes=*/0);
    EXPECT_TRUE(probe.GetMethod(NthKey(0)).ok());
    return probe.resident_bytes();
  }

  Dataset train_ = TinyDataset();
  FitOptions fit_ = QuickFit();
  std::unique_ptr<core::TsgMethod> method_;
  std::unique_ptr<ArtifactStore> store_;
};

TEST_F(ServingCacheEvictionTest, ByteCapEvictsLeastRecentlyUsed) {
  const int64_t one = OneModelBytes();
  ASSERT_GT(one, 0);
  // Room for two resident models, not three.
  ServingCache cache(store_.get(), /*max_bytes=*/2 * one);
  const int64_t evictions_before = CounterValue("serving.evictions");
  const int64_t misses_before = CounterValue("serving.misses");

  ASSERT_TRUE(cache.GetMethod(NthKey(0)).ok());
  ASSERT_TRUE(cache.GetMethod(NthKey(1)).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(CounterValue("serving.evictions"), evictions_before);

  // Touch 0 so 1 becomes the least recently used, then load 2: 1 must go.
  ASSERT_TRUE(cache.GetMethod(NthKey(0)).ok());
  ASSERT_TRUE(cache.GetMethod(NthKey(2)).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.resident_bytes(), cache.max_bytes());
  EXPECT_EQ(CounterValue("serving.evictions"), evictions_before + 1);

  // 0 and 2 are still warm (no new miss); 1 re-restores from the store.
  const int64_t misses_now = CounterValue("serving.misses");
  ASSERT_TRUE(cache.GetMethod(NthKey(0)).ok());
  ASSERT_TRUE(cache.GetMethod(NthKey(2)).ok());
  EXPECT_EQ(CounterValue("serving.misses"), misses_now);
  ASSERT_TRUE(cache.GetMethod(NthKey(1)).ok());
  EXPECT_EQ(CounterValue("serving.misses"), misses_now + 1);
  EXPECT_GT(CounterValue("serving.misses"), misses_before);
}

TEST_F(ServingCacheEvictionTest, EvictedModelServesBitIdenticallyAfterReload) {
  const int64_t one = OneModelBytes();
  ServingCache cache(store_.get(), /*max_bytes=*/one);
  const std::vector<GenRequest> requests = {{2, 31}};
  auto before = cache.Generate(NthKey(0), requests);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  // Loading key 1 evicts key 0 (cap fits one model).
  ASSERT_TRUE(cache.GetMethod(NthKey(1)).ok());
  EXPECT_EQ(cache.size(), 1u);
  auto after = cache.Generate(NthKey(0), requests);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(SamplesBitEqual(before.value()[0], after.value()[0]));
}

TEST_F(ServingCacheEvictionTest, SingleModelLargerThanCapStillServes) {
  // The just-touched entry is exempt from eviction, so a cap smaller than any
  // model degrades to "at most one resident" rather than thrash-and-fail.
  ServingCache cache(store_.get(), /*max_bytes=*/1);
  auto method = cache.GetMethod(NthKey(0));
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.resident_bytes(), cache.max_bytes());
  auto result = cache.Generate(NthKey(0), {{1, 9}});
  EXPECT_TRUE(result.ok());

  // An in-flight shared_ptr keeps an evicted model alive: load another key
  // (evicting 0) and the old handle still generates.
  ASSERT_TRUE(cache.GetMethod(NthKey(1)).ok());
  EXPECT_EQ(cache.size(), 1u);
  Rng rng(9);
  EXPECT_EQ(method.value()->Generate(1, rng).size(), 1u);
}

TEST(ServingCacheTest, UnboundedByDefaultWhenEnvUnset) {
  // DefaultMaxBytes reads TSGBENCH_SERVING_CACHE_BYTES; the test environment
  // leaves it unset, which must mean "no cap", never "zero residency".
  if (std::getenv("TSGBENCH_SERVING_CACHE_BYTES") == nullptr) {
    EXPECT_EQ(ServingCache::DefaultMaxBytes(), 0);
  }
  ArtifactStore store(TempStoreDir("serving_unbounded"));
  ServingCache cache(&store, /*max_bytes=*/0);
  EXPECT_EQ(cache.max_bytes(), 0);
}

// ---- TSGPARAMS strictness (the serialize-layer bugfixes). ----

TEST(SerializeStrictTest, TrailingGarbageRejected) {
  Rng rng(4);
  nn::Dense layer(3, 3, rng);
  auto params = layer.Parameters();
  const std::string blob = nn::SerializeTensors(
      {params[0].value(), params[1].value()});
  ASSERT_TRUE(nn::ParseTensors(blob, "test").ok());
  EXPECT_FALSE(nn::ParseTensors(blob + "0", "test").ok());
  EXPECT_FALSE(nn::ParseTensors(blob + "\nTSGPARAMS v1\n", "test").ok());
  // Trailing whitespace is not corruption.
  EXPECT_TRUE(nn::ParseTensors(blob + "\n  \n", "test").ok());
}

TEST(SerializeStrictTest, LoadParametersRejectsTrailingBytesOnDisk) {
  Rng rng(5);
  nn::Dense layer(2, 2, rng);
  auto params = layer.Parameters();
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsg_trailing.txt").string();
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());
  ASSERT_TRUE(nn::LoadParameters(path, params).ok());
  {
    std::ofstream file(path, std::ios::app | std::ios::binary);
    file << "garbage";
  }
  EXPECT_FALSE(nn::LoadParameters(path, params).ok());
  std::filesystem::remove(path);
}

TEST(SerializeStrictTest, SaveParametersIsAtomic) {
  Rng rng(6);
  nn::Dense layer(2, 2, rng);
  auto params = layer.Parameters();
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsg_atomic.txt").string();
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());
  // The temp file from the write-then-rename protocol must not linger.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tsg::store
