#ifndef TSG_TESTS_GRADCHECK_H_
#define TSG_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "ag/ops.h"
#include "ag/variable.h"

namespace tsg::testing {

/// Verifies reverse-mode gradients against central finite differences. `make_loss`
/// must rebuild the scalar loss from the *current values* of `params` on every call
/// (the graph is reconstructed per invocation).
inline void ExpectGradCheck(const std::function<ag::Var()>& make_loss,
                            std::vector<ag::Var> params, double eps = 1e-5,
                            double tol = 1e-6) {
  // Analytic gradients.
  for (auto& p : params) p.ZeroGrad();
  ag::Var loss = make_loss();
  ag::Backward(loss);

  for (size_t pi = 0; pi < params.size(); ++pi) {
    auto& value = params[pi].mutable_value();
    const auto& grad = params[pi].grad();
    ASSERT_EQ(grad.size(), value.size()) << "param " << pi << " missing gradient";
    for (int64_t i = 0; i < value.size(); ++i) {
      const double saved = value[i];
      value[i] = saved + eps;
      const double up = make_loss().value()(0, 0);
      value[i] = saved - eps;
      const double down = make_loss().value()(0, 0);
      value[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = grad[i];
      const double scale = std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * scale)
          << "param " << pi << " element " << i;
    }
  }
}

}  // namespace tsg::testing

#endif  // TSG_TESTS_GRADCHECK_H_
