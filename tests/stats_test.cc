#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "stats/rank_tests.h"

namespace tsg::stats {
namespace {

TEST(MomentsTest, KnownSample) {
  const Moments m = ComputeMoments({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.variance, 4.0);
  EXPECT_DOUBLE_EQ(m.stddev, 2.0);
}

TEST(MomentsTest, SymmetricSampleHasZeroSkewness) {
  const Moments m = ComputeMoments({-2, -1, 0, 1, 2});
  EXPECT_NEAR(m.skewness, 0.0, 1e-12);
}

TEST(MomentsTest, RightSkewIsPositive) {
  const Moments m = ComputeMoments({1, 1, 1, 1, 10});
  EXPECT_GT(m.skewness, 1.0);
}

TEST(MomentsTest, GaussianSampleMomentsMatchTheory) {
  Rng rng(1);
  std::vector<double> x(200000);
  for (auto& v : x) v = rng.Normal();
  const Moments m = ComputeMoments(x);
  EXPECT_NEAR(m.mean, 0.0, 0.02);
  EXPECT_NEAR(m.variance, 1.0, 0.03);
  EXPECT_NEAR(m.skewness, 0.0, 0.05);
  EXPECT_NEAR(m.kurtosis, 3.0, 0.1);
}

TEST(MomentsTest, UniformKurtosisIsNineFifths) {
  Rng rng(2);
  std::vector<double> x(200000);
  for (auto& v : x) v = rng.Uniform();
  EXPECT_NEAR(ComputeMoments(x).kurtosis, 1.8, 0.05);
}

TEST(MomentsTest, ConstantSampleIsSafe) {
  const Moments m = ComputeMoments({5, 5, 5});
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
  EXPECT_DOUBLE_EQ(m.skewness, 0.0);
  EXPECT_DOUBLE_EQ(m.kurtosis, 0.0);
}

TEST(DescriptiveTest, BasicAggregates) {
  const std::vector<double> x = {3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(Mean(x), 2.8);
  EXPECT_DOUBLE_EQ(Min(x), 1.0);
  EXPECT_DOUBLE_EQ(Max(x), 5.0);
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4, 5}), 3.0);
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
}

TEST(DescriptiveTest, SampleStddevUsesBesselCorrection) {
  EXPECT_NEAR(SampleStddev({2, 4}), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(SampleStddev({7}), 0.0);
}

TEST(HistogramTest, CountsAndProbabilities) {
  Histogram h(0.0, 10.0, 5);
  h.AddAll({1, 3, 3, 7, 9});
  const auto p = h.Probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.2);  // [0,2): {1}
  EXPECT_DOUBLE_EQ(p[1], 0.4);  // [2,4): {3,3}
  EXPECT_DOUBLE_EQ(p[3], 0.2);  // [6,8): {7}
  EXPECT_DOUBLE_EQ(p[4], 0.2);  // [8,10]: {9}
}

TEST(HistogramTest, OutOfRangeClampsToEndBins) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(99.0);
  const auto p = h.Probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(HistogramTest, IdenticalSamplesHaveZeroMdd) {
  Rng rng(3);
  std::vector<double> sample(1000);
  for (auto& v : sample) v = rng.Uniform();
  Histogram a = Histogram::FitRange(sample, 20);
  Histogram b(0.0, 1.0, 20);
  a.AddAll(sample);
  // Build b with the same edges via FitRange on the same sample.
  Histogram b2 = Histogram::FitRange(sample, 20);
  b2.AddAll(sample);
  EXPECT_DOUBLE_EQ(a.MeanAbsDiff(b2), 0.0);
}

TEST(HistogramTest, ShiftedDistributionsDiffer) {
  Rng rng(4);
  Histogram a(0.0, 2.0, 10), b(0.0, 2.0, 10);
  for (int i = 0; i < 2000; ++i) {
    a.Add(rng.Uniform());
    b.Add(rng.Uniform() + 1.0);
  }
  EXPECT_GT(a.MeanAbsDiff(b), 0.1);
}

TEST(HistogramTest, DegenerateRangeIsSafe) {
  Histogram h(1.0, 1.0, 4);
  h.Add(1.0);
  EXPECT_EQ(h.total_count(), 1);
}

TEST(KdeTest, IntegratesToOne) {
  Rng rng(5);
  std::vector<double> sample(500);
  for (auto& v : sample) v = rng.Normal();
  KernelDensity kde(sample);
  const auto grid = kde.EvaluateGrid(-6, 6, 600);
  double integral = 0.0;
  for (double v : grid) integral += v * 12.0 / 599.0;
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, PeaksNearMode) {
  std::vector<double> sample(200, 2.0);
  for (int i = 0; i < 100; ++i) sample.push_back(2.0 + 0.01 * i);
  KernelDensity kde(sample);
  EXPECT_GT(kde.Evaluate(2.0), kde.Evaluate(5.0));
}

TEST(KdeTest, L1DistanceZeroForIdenticalSamples) {
  Rng rng(6);
  std::vector<double> sample(300);
  for (auto& v : sample) v = rng.Normal();
  KernelDensity a(sample), b(sample);
  EXPECT_NEAR(KdeL1Distance(a, b, -5, 5), 0.0, 1e-12);
}

TEST(KdeTest, L1DistanceSeparatesShiftedSamples) {
  Rng rng(7);
  std::vector<double> s1(300), s2(300);
  for (auto& v : s1) v = rng.Normal();
  for (auto& v : s2) v = rng.Normal() + 3.0;
  KernelDensity a(s1), b(s2);
  EXPECT_GT(KdeL1Distance(a, b, -6, 9), 1.0);
}

// ---- Special functions & distributions, validated against known table values. ----

TEST(DistributionsTest, GammaPBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(RegularizedGammaP(0.5, 100.0), 1.0, 1e-10);
}

TEST(DistributionsTest, ChiSquareKnownValues) {
  // chi2 CDF at its median and known quantiles (values from standard tables).
  EXPECT_NEAR(ChiSquareCdf(3.841, 1.0), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(5.991, 2.0), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(16.919, 9.0), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareSf(16.919, 9.0), 0.05, 1e-3);
}

TEST(DistributionsTest, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.1, 0.3, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 3.0, x),
                1.0 - RegularizedIncompleteBeta(3.0, 2.0, 1.0 - x), 1e-10);
  }
}

TEST(DistributionsTest, StudentTKnownValues) {
  // Two-sided critical values: t_{0.975, 10} = 2.228, t_{0.975, 5} = 2.571.
  EXPECT_NEAR(StudentTTwoSidedSf(2.228, 10.0), 0.05, 1e-3);
  EXPECT_NEAR(StudentTTwoSidedSf(2.571, 5.0), 0.05, 1e-3);
  EXPECT_NEAR(StudentTTwoSidedSf(0.0, 7.0), 1.0, 1e-12);
}

TEST(DistributionsTest, FDistKnownValue) {
  // F_{0.95}(5, 10) = 3.326.
  EXPECT_NEAR(FDistSf(3.326, 5.0, 10.0), 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(FDistSf(0.0, 3.0, 3.0), 1.0);
}

TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-4);
}

// ---- Ranking & rank tests. ----

TEST(RankTest, SimpleAscendingRanks) {
  const auto r = RankWithTies({30, 10, 20});
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(RankTest, TiesGetAverageRank) {
  const auto r = RankWithTies({5, 5, 1, 9});
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(RankTest, DescendingOption) {
  const auto r = RankWithTies({30, 10, 20}, /*ascending=*/false);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
}

TEST(FriedmanTest2, ClearWinnerIsSignificant) {
  // 8 blocks, 3 treatments; treatment 0 always best, 2 always worst.
  linalg::Matrix scores(8, 3);
  Rng rng(8);
  for (int64_t i = 0; i < 8; ++i) {
    scores(i, 0) = 1.0 + 0.01 * rng.Uniform();
    scores(i, 1) = 2.0 + 0.01 * rng.Uniform();
    scores(i, 2) = 3.0 + 0.01 * rng.Uniform();
  }
  const FriedmanResult result = FriedmanTest(scores);
  EXPECT_LT(result.p_value, 0.001);
  EXPECT_DOUBLE_EQ(result.average_ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(result.average_ranks[2], 3.0);
  // No-ties statistic: 12/(b k(k+1)) sum Rj^2 - 3 b (k+1) = 16 for perfect ordering.
  EXPECT_NEAR(result.statistic, 16.0, 1e-9);
}

TEST(FriedmanTest2, RandomScoresNotSignificant) {
  Rng rng(9);
  linalg::Matrix scores(10, 4);
  for (int64_t i = 0; i < scores.size(); ++i) scores[i] = rng.Uniform();
  const FriedmanResult result = FriedmanTest(scores);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(FriedmanTest2, AllTiedGivesPValueOne) {
  const linalg::Matrix scores = {{1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
  const FriedmanResult result = FriedmanTest(scores);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(FriedmanTest2, AllTiedStatisticIsZeroAndFinite) {
  const linalg::Matrix scores = {{1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
  const FriedmanResult result = FriedmanTest(scores);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  for (double r : result.average_ranks) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(ConoverTest, AllTiedScoresGiveNoSeparation) {
  // Every treatment identical: the Conover denominator is zero; the p-values must
  // come out as 1 everywhere (no NaN from 0/0).
  const linalg::Matrix scores = {{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}};
  const FriedmanResult fr = FriedmanTest(scores);
  const linalg::Matrix p = ConoverFriedmanPValues(fr);
  for (int64_t i = 0; i < p.size(); ++i) {
    EXPECT_FALSE(std::isnan(p[i])) << i;
    EXPECT_DOUBLE_EQ(p[i], 1.0) << i;
  }
}

TEST(ConoverTest, IdenticalRankPatternsSeparatePerfectly) {
  // Every block ranks the treatments the same way: zero within-pattern variance.
  // Differing rank sums are then perfectly consistent evidence (p -> 0), and the
  // degenerate-denominator path must not divide by zero.
  const linalg::Matrix scores = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {1, 3, 5}};
  const FriedmanResult fr = FriedmanTest(scores);
  const linalg::Matrix p = ConoverFriedmanPValues(fr);
  EXPECT_DOUBLE_EQ(p(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(p(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  for (int64_t i = 0; i < p.size(); ++i) EXPECT_FALSE(std::isnan(p[i])) << i;
}

TEST(ConoverTest, SeparatesExtremesNotNeighbors) {
  // Treatments 0 and 1 are close; treatment 2 is far worse.
  Rng rng(10);
  linalg::Matrix scores(12, 3);
  for (int64_t i = 0; i < 12; ++i) {
    const double a = rng.Uniform();
    // Treatments 0 and 1 trade wins evenly; treatment 2 is always far worse.
    const double delta = (i % 2 == 0) ? 0.05 : -0.05;
    scores(i, 0) = a;
    scores(i, 1) = a + delta;
    scores(i, 2) = a + 10.0;
  }
  const FriedmanResult fr = FriedmanTest(scores);
  const linalg::Matrix p = ConoverFriedmanPValues(fr);
  EXPECT_LT(p(0, 2), 0.01);
  EXPECT_LT(p(1, 2), 0.01);
  EXPECT_GT(p(0, 1), 0.05);
  // Symmetry and unit diagonal.
  EXPECT_DOUBLE_EQ(p(0, 2), p(2, 0));
  EXPECT_DOUBLE_EQ(p(1, 1), 1.0);
}

TEST(CriticalDifferenceTest, TiersFollowSignificance) {
  Rng rng(11);
  linalg::Matrix scores(12, 4);
  for (int64_t i = 0; i < 12; ++i) {
    const double base = rng.Uniform();
    // Treatments 0 and 1 trade wins evenly (same tier); 2 and 3 are clearly worse.
    const double delta = (i % 2 == 0) ? 0.01 : -0.01;
    scores(i, 0) = base;
    scores(i, 1) = base + delta;
    scores(i, 2) = base + 10.0;
    scores(i, 3) = base + 20.0;
  }
  const FriedmanResult fr = FriedmanTest(scores);
  const linalg::Matrix p = ConoverFriedmanPValues(fr);
  const std::vector<int> tiers = CriticalDifferenceTiers(fr, p, 0.05);
  EXPECT_EQ(tiers[0], tiers[1]);  // Indistinguishable pair shares a tier.
  EXPECT_GT(tiers[2], tiers[0]);
  EXPECT_GT(tiers[3], tiers[2]);
}

}  // namespace
}  // namespace tsg::stats

namespace tsg::stats {
namespace {

TEST(FriedmanTextbookTest, MatchesHandComputedStatistic) {
  // Classic worked example: 4 blocks, 3 treatments, no ties.
  //   Block ranks: (1,2,3), (1,3,2), (1,2,3), (1,2,3) -> R = (4, 9, 11).
  // chi2 = 12/(4*3*4) * (16+81+121) - 3*4*4 = 0.25*218 - 48 = 6.5.
  const linalg::Matrix scores = {{1.0, 2.0, 3.0},
                                 {1.0, 3.0, 2.0},
                                 {1.0, 2.0, 3.0},
                                 {1.0, 2.0, 3.0}};
  const FriedmanResult result = FriedmanTest(scores);
  EXPECT_DOUBLE_EQ(result.rank_sums[0], 4.0);
  EXPECT_DOUBLE_EQ(result.rank_sums[1], 9.0);
  EXPECT_DOUBLE_EQ(result.rank_sums[2], 11.0);
  EXPECT_NEAR(result.statistic, 6.5, 1e-9);
  // p = P(chi2_2 >= 6.5) = exp(-6.5/2) ~ 0.0388.
  EXPECT_NEAR(result.p_value, std::exp(-3.25), 1e-6);
}

TEST(FriedmanTextbookTest, TieCorrectionReducesStatistic) {
  // Introducing ties within blocks must not increase the statistic relative to
  // breaking the ties consistently.
  const linalg::Matrix tied = {{1.0, 1.0, 3.0}, {1.0, 1.0, 3.0}, {1.0, 1.0, 3.0},
                               {1.0, 1.0, 3.0}};
  const linalg::Matrix untied = {{1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, {1.0, 2.0, 3.0},
                                 {1.0, 2.0, 3.0}};
  EXPECT_LE(FriedmanTest(tied).statistic, FriedmanTest(untied).statistic + 1e-9);
}

}  // namespace
}  // namespace tsg::stats
