// Tests for the kernel layer (src/kernels): exactness against naive references
// on edge shapes, bit-identity between the active and scalar backends, and
// bit-identity across thread counts — the two determinism guarantees DESIGN.md
// §6 promises.
#include "kernels/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "base/aligned.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "gtest/gtest.h"

namespace tsg {
namespace {

/// Forces the global pool to `n`-way execution for the duration of a scope.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int n) {
    base::ThreadPool::Global().SetMaxParallelism(n);
  }
  ~ScopedParallelism() { base::ThreadPool::Global().SetMaxParallelism(0); }
};

std::vector<double> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.Normal();
  return v;
}

/// Naive C += A*B (or A^T*B) with a single accumulator per element in ascending
/// p order — the exact order the kernel contract promises, so comparisons
/// against Gemm/GemmTransA are bitwise, not approximate. Each accumulation uses
/// the rounding the compiled drivers use: std::fma when the kernels TU was
/// built with FMA contraction, separate multiply-then-add otherwise.
void NaiveGemm(bool trans_a, int64_t m, int64_t n, int64_t k, const double* a,
               const double* b, double* c) {
  const bool fused = tsg::kernels::GemmUsesFma();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = c[i * n + j];
      for (int64_t p = 0; p < k; ++p) {
        const double aip = trans_a ? a[p * m + i] : a[i * k + p];
        s = fused ? std::fma(aip, b[p * n + j], s) : s + aip * b[p * n + j];
      }
      c[i * n + j] = s;
    }
  }
}

bool BitEqual(const std::vector<double>& x, const std::vector<double>& y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
}

struct Shape {
  int64_t m, n, k;
};

// Edge shapes: single rows/columns, odd tails in every dimension, exact
// micro-tile multiples, and shapes big enough to cross the packed-path and
// fork thresholds.
const Shape kShapes[] = {{1, 1, 1},    {1, 17, 1},  {17, 1, 3},   {3, 5, 4},
                         {4, 8, 16},   {5, 9, 7},   {8, 16, 300}, {13, 29, 31},
                         {65, 33, 129}, {96, 80, 70}};

TEST(KernelsGemmTest, MatchesNaiveAscendingOrderBitwise) {
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 1);
    const auto b = RandomVec(s.k * s.n, 2);
    const auto c0 = RandomVec(s.m * s.n, 3);  // Nonzero C exercises +=.
    auto want = c0;
    NaiveGemm(false, s.m, s.n, s.k, a.data(), b.data(), want.data());
    auto got = c0;
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, got.data(), s.n);
    EXPECT_TRUE(BitEqual(want, got)) << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsGemmTest, TransAMatchesNaiveBitwise) {
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.k * s.m, 4);  // a is k x m, read as A^T.
    const auto b = RandomVec(s.k * s.n, 5);
    const auto c0 = RandomVec(s.m * s.n, 6);
    auto want = c0;
    NaiveGemm(true, s.m, s.n, s.k, a.data(), b.data(), want.data());
    auto got = c0;
    kernels::GemmTransA(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n, got.data(),
                        s.n);
    EXPECT_TRUE(BitEqual(want, got)) << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsGemmTest, TransBCloseToNaiveAndBitwiseEqualToScalarBackend) {
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 7);
    const auto bt = RandomVec(s.n * s.k, 8);  // b is n x k, read as B^T.
    // TransB uses the lane-split dot order, so the naive comparison is
    // tolerance-based; the scalar-backend comparison is bitwise.
    std::vector<double> naive(static_cast<size_t>(s.m * s.n), 0.0);
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t j = 0; j < s.n; ++j) {
        double acc = 0.0;
        for (int64_t p = 0; p < s.k; ++p) acc += a[i * s.k + p] * bt[j * s.k + p];
        naive[static_cast<size_t>(i * s.n + j)] = acc;
      }
    }
    std::vector<double> got(static_cast<size_t>(s.m * s.n), 0.0);
    kernels::GemmTransB(s.m, s.n, s.k, a.data(), s.k, bt.data(), s.k, got.data(),
                        s.n);
    for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], naive[i], 1e-12);
    std::vector<double> scalar_out(static_cast<size_t>(s.m * s.n), 0.0);
    kernels::scalar::GemmTransB(s.m, s.n, s.k, a.data(), s.k, bt.data(), s.k,
                                scalar_out.data(), s.n);
    EXPECT_TRUE(BitEqual(scalar_out, got));
  }
}

TEST(KernelsGemmTest, ActiveBackendBitwiseEqualToScalarBackend) {
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 9);
    const auto b = RandomVec(s.k * s.n, 10);
    std::vector<double> c_active(static_cast<size_t>(s.m * s.n), 0.0);
    std::vector<double> c_scalar = c_active;
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c_active.data(),
                  s.n);
    kernels::scalar::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                          c_scalar.data(), s.n);
    EXPECT_TRUE(BitEqual(c_scalar, c_active)) << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsGemmTest, EmptyDimensionsLeaveCUntouched) {
  const auto c0 = RandomVec(12, 11);
  auto c = c0;
  const double dummy = 0.0;
  kernels::Gemm(0, 3, 4, &dummy, 4, &dummy, 3, c.data(), 3);
  kernels::Gemm(4, 0, 3, &dummy, 3, &dummy, 0, c.data(), 0);
  kernels::Gemm(3, 4, 0, &dummy, 0, &dummy, 4, c.data(), 4);
  kernels::GemmTransA(3, 4, 0, &dummy, 3, &dummy, 4, c.data(), 4);
  kernels::GemmTransB(3, 0, 4, &dummy, 4, &dummy, 4, c.data(), 0);
  EXPECT_TRUE(BitEqual(c0, c));
}

TEST(KernelsGemmTest, BitIdenticalAcrossThreadCounts) {
  // Odd shape, large enough that the packed path forks row tiles.
  const Shape s{193, 161, 131};
  const auto a = RandomVec(s.m * s.k, 12);
  const auto b = RandomVec(s.k * s.n, 13);
  std::vector<double> serial(static_cast<size_t>(s.m * s.n), 0.0);
  {
    ScopedParallelism scoped(1);
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, serial.data(),
                  s.n);
  }
  std::vector<double> wide(static_cast<size_t>(s.m * s.n), 0.0);
  {
    ScopedParallelism scoped(4);
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, wide.data(), s.n);
  }
  EXPECT_TRUE(BitEqual(serial, wide));
}

TEST(KernelsPrimitivesTest, DotAndSquaredDistanceTailsMatchScalarBitwise) {
  for (int64_t n = 0; n <= 9; ++n) {
    const auto a = RandomVec(n, 14);
    const auto b = RandomVec(n, 15);
    EXPECT_EQ(kernels::Dot(a.data(), b.data(), n),
              kernels::scalar::Dot(a.data(), b.data(), n));
    EXPECT_EQ(kernels::SquaredDistance(a.data(), b.data(), n),
              kernels::scalar::SquaredDistance(a.data(), b.data(), n));
    // Tolerance sanity against the plain left-to-right reference.
    double dot = 0.0, sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      dot += a[static_cast<size_t>(i)] * b[static_cast<size_t>(i)];
      const double d = a[static_cast<size_t>(i)] - b[static_cast<size_t>(i)];
      sq += d * d;
    }
    EXPECT_NEAR(kernels::Dot(a.data(), b.data(), n), dot, 1e-12);
    EXPECT_NEAR(kernels::SquaredDistance(a.data(), b.data(), n), sq, 1e-12);
  }
}

TEST(KernelsPrimitivesTest, SquaredDistanceOfIdenticalInputsIsExactlyZero) {
  const auto a = RandomVec(1003, 16);
  EXPECT_EQ(kernels::SquaredDistance(a.data(), a.data(), 1003), 0.0);
}

TEST(KernelsPrimitivesTest, AxpyMatchesElementwiseReferenceBitwise) {
  for (int64_t n : {0, 1, 3, 4, 5, 8, 13, 100}) {
    const auto x = RandomVec(n, 17);
    const auto y0 = RandomVec(n, 18);
    auto want = y0;
    for (int64_t i = 0; i < n; ++i)
      want[static_cast<size_t>(i)] += 1.7 * x[static_cast<size_t>(i)];
    auto got = y0;
    kernels::Axpy(n, 1.7, x.data(), got.data());
    EXPECT_TRUE(BitEqual(want, got)) << n;
  }
}

TEST(KernelsBackendTest, BackendNameMatchesSimdEnabled) {
  EXPECT_STREQ(kernels::BackendName(),
               kernels::SimdEnabled() ? "simd-v4" : "scalar-v4");
}

TEST(AlignedBufferTest, DataIsCacheLineAlignedAndMoveTransfersOwnership) {
  base::AlignedBuffer<double> buf(37);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) %
                base::AlignedBuffer<double>::kAlignment,
            0u);
  EXPECT_EQ(buf.size(), 37u);
  double* p = buf.data();
  base::AlignedBuffer<double> moved = std::move(buf);
  EXPECT_EQ(moved.data(), p);
  EXPECT_EQ(buf.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  base::AlignedBuffer<double> empty(0);
  EXPECT_EQ(empty.data(), nullptr);
}

}  // namespace
}  // namespace tsg
