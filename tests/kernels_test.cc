// Tests for the kernel layer (src/kernels): exactness against naive references
// on edge shapes, bit-identity between the active and scalar backends, and
// bit-identity across thread counts — the two determinism guarantees DESIGN.md
// §6 promises.
#include "kernels/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "base/aligned.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "gtest/gtest.h"

namespace tsg {
namespace {

/// Forces the global pool to `n`-way execution for the duration of a scope.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int n) {
    base::ThreadPool::Global().SetMaxParallelism(n);
  }
  ~ScopedParallelism() { base::ThreadPool::Global().SetMaxParallelism(0); }
};

std::vector<double> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.Normal();
  return v;
}

/// Naive C += A*B (or A^T*B) with a single accumulator per element in ascending
/// p order — the exact order the kernel contract promises, so comparisons
/// against Gemm/GemmTransA are bitwise, not approximate. Each accumulation uses
/// the rounding the compiled drivers use: std::fma when the kernels TU was
/// built with FMA contraction, separate multiply-then-add otherwise.
void NaiveGemm(bool trans_a, int64_t m, int64_t n, int64_t k, const double* a,
               const double* b, double* c) {
  const bool fused = tsg::kernels::GemmUsesFma();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = c[i * n + j];
      for (int64_t p = 0; p < k; ++p) {
        const double aip = trans_a ? a[p * m + i] : a[i * k + p];
        s = fused ? std::fma(aip, b[p * n + j], s) : s + aip * b[p * n + j];
      }
      c[i * n + j] = s;
    }
  }
}

bool BitEqual(const std::vector<double>& x, const std::vector<double>& y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
}

struct Shape {
  int64_t m, n, k;
};

// Edge shapes: single rows/columns, odd tails in every dimension, exact
// micro-tile multiples, and shapes big enough to cross the packed-path and
// fork thresholds.
const Shape kShapes[] = {{1, 1, 1},    {1, 17, 1},  {17, 1, 3},   {3, 5, 4},
                         {4, 8, 16},   {5, 9, 7},   {8, 16, 300}, {13, 29, 31},
                         {65, 33, 129}, {96, 80, 70}};

TEST(KernelsGemmTest, MatchesNaiveAscendingOrderBitwise) {
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 1);
    const auto b = RandomVec(s.k * s.n, 2);
    const auto c0 = RandomVec(s.m * s.n, 3);  // Nonzero C exercises +=.
    auto want = c0;
    NaiveGemm(false, s.m, s.n, s.k, a.data(), b.data(), want.data());
    auto got = c0;
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, got.data(), s.n);
    EXPECT_TRUE(BitEqual(want, got)) << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsGemmTest, TransAMatchesNaiveBitwise) {
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.k * s.m, 4);  // a is k x m, read as A^T.
    const auto b = RandomVec(s.k * s.n, 5);
    const auto c0 = RandomVec(s.m * s.n, 6);
    auto want = c0;
    NaiveGemm(true, s.m, s.n, s.k, a.data(), b.data(), want.data());
    auto got = c0;
    kernels::GemmTransA(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n, got.data(),
                        s.n);
    EXPECT_TRUE(BitEqual(want, got)) << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsGemmTest, TransBCloseToNaiveAndBitwiseEqualToScalarBackend) {
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 7);
    const auto bt = RandomVec(s.n * s.k, 8);  // b is n x k, read as B^T.
    // TransB uses the lane-split dot order, so the naive comparison is
    // tolerance-based; the scalar-backend comparison is bitwise.
    std::vector<double> naive(static_cast<size_t>(s.m * s.n), 0.0);
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t j = 0; j < s.n; ++j) {
        double acc = 0.0;
        for (int64_t p = 0; p < s.k; ++p) acc += a[i * s.k + p] * bt[j * s.k + p];
        naive[static_cast<size_t>(i * s.n + j)] = acc;
      }
    }
    std::vector<double> got(static_cast<size_t>(s.m * s.n), 0.0);
    kernels::GemmTransB(s.m, s.n, s.k, a.data(), s.k, bt.data(), s.k, got.data(),
                        s.n);
    for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], naive[i], 1e-12);
    std::vector<double> scalar_out(static_cast<size_t>(s.m * s.n), 0.0);
    kernels::scalar::GemmTransB(s.m, s.n, s.k, a.data(), s.k, bt.data(), s.k,
                                scalar_out.data(), s.n);
    EXPECT_TRUE(BitEqual(scalar_out, got));
  }
}

TEST(KernelsGemmTest, ActiveBackendBitwiseEqualToScalarBackend) {
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 9);
    const auto b = RandomVec(s.k * s.n, 10);
    std::vector<double> c_active(static_cast<size_t>(s.m * s.n), 0.0);
    std::vector<double> c_scalar = c_active;
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c_active.data(),
                  s.n);
    kernels::scalar::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                          c_scalar.data(), s.n);
    EXPECT_TRUE(BitEqual(c_scalar, c_active)) << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsGemmTest, EmptyDimensionsLeaveCUntouched) {
  const auto c0 = RandomVec(12, 11);
  auto c = c0;
  const double dummy = 0.0;
  kernels::Gemm(0, 3, 4, &dummy, 4, &dummy, 3, c.data(), 3);
  kernels::Gemm(4, 0, 3, &dummy, 3, &dummy, 0, c.data(), 0);
  kernels::Gemm(3, 4, 0, &dummy, 0, &dummy, 4, c.data(), 4);
  kernels::GemmTransA(3, 4, 0, &dummy, 3, &dummy, 4, c.data(), 4);
  kernels::GemmTransB(3, 0, 4, &dummy, 4, &dummy, 4, c.data(), 0);
  EXPECT_TRUE(BitEqual(c0, c));
}

TEST(KernelsGemmTest, BitIdenticalAcrossThreadCounts) {
  // Odd shape, large enough that the packed path forks row tiles.
  const Shape s{193, 161, 131};
  const auto a = RandomVec(s.m * s.k, 12);
  const auto b = RandomVec(s.k * s.n, 13);
  std::vector<double> serial(static_cast<size_t>(s.m * s.n), 0.0);
  {
    ScopedParallelism scoped(1);
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, serial.data(),
                  s.n);
  }
  std::vector<double> wide(static_cast<size_t>(s.m * s.n), 0.0);
  {
    ScopedParallelism scoped(4);
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, wide.data(), s.n);
  }
  EXPECT_TRUE(BitEqual(serial, wide));
}

TEST(KernelsPrimitivesTest, DotAndSquaredDistanceTailsMatchScalarBitwise) {
  for (int64_t n = 0; n <= 9; ++n) {
    const auto a = RandomVec(n, 14);
    const auto b = RandomVec(n, 15);
    EXPECT_EQ(kernels::Dot(a.data(), b.data(), n),
              kernels::scalar::Dot(a.data(), b.data(), n));
    EXPECT_EQ(kernels::SquaredDistance(a.data(), b.data(), n),
              kernels::scalar::SquaredDistance(a.data(), b.data(), n));
    // Tolerance sanity against the plain left-to-right reference.
    double dot = 0.0, sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      dot += a[static_cast<size_t>(i)] * b[static_cast<size_t>(i)];
      const double d = a[static_cast<size_t>(i)] - b[static_cast<size_t>(i)];
      sq += d * d;
    }
    EXPECT_NEAR(kernels::Dot(a.data(), b.data(), n), dot, 1e-12);
    EXPECT_NEAR(kernels::SquaredDistance(a.data(), b.data(), n), sq, 1e-12);
  }
}

TEST(KernelsPrimitivesTest, SquaredDistanceOfIdenticalInputsIsExactlyZero) {
  const auto a = RandomVec(1003, 16);
  EXPECT_EQ(kernels::SquaredDistance(a.data(), a.data(), 1003), 0.0);
}

TEST(KernelsPrimitivesTest, AxpyMatchesElementwiseReferenceBitwise) {
  for (int64_t n : {0, 1, 3, 4, 5, 8, 13, 100}) {
    const auto x = RandomVec(n, 17);
    const auto y0 = RandomVec(n, 18);
    auto want = y0;
    for (int64_t i = 0; i < n; ++i)
      want[static_cast<size_t>(i)] += 1.7 * x[static_cast<size_t>(i)];
    auto got = y0;
    kernels::Axpy(n, 1.7, x.data(), got.data());
    EXPECT_TRUE(BitEqual(want, got)) << n;
  }
}

TEST(KernelsBackendTest, BackendNameMatchesSimdEnabled) {
  EXPECT_STREQ(kernels::BackendName(),
               kernels::SimdEnabled() ? "simd-v4" : "scalar-v4");
}

/// Restores the env/cpuid default dispatch when a forcing test exits.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(kernels::DispatchMode mode) {
    kernels::ForceDispatch(mode);
  }
  ~ScopedDispatch() { kernels::ForceDispatch(kernels::DispatchMode::kAuto); }
};

TEST(KernelsDispatchTest, ForceScalarRoutesToScalarBackend) {
  ScopedDispatch scoped(kernels::DispatchMode::kScalar);
  EXPECT_EQ(kernels::ResolvedDispatch(), kernels::DispatchMode::kScalar);
  EXPECT_FALSE(kernels::SimdEnabled());
  EXPECT_STREQ(kernels::BackendName(), "scalar-v4");
}

TEST(KernelsDispatchTest, ForceSimdRoutesToSimdOrFallsBackWhenNotCompiled) {
  ScopedDispatch scoped(kernels::DispatchMode::kSimd);
  if (kernels::SimdCompiled()) {
    EXPECT_EQ(kernels::ResolvedDispatch(), kernels::DispatchMode::kSimd);
    EXPECT_TRUE(kernels::SimdEnabled());
    EXPECT_STREQ(kernels::BackendName(), "simd-v4");
  } else {
    EXPECT_EQ(kernels::ResolvedDispatch(), kernels::DispatchMode::kScalar);
    EXPECT_STREQ(kernels::BackendName(), "scalar-v4");
  }
}

TEST(KernelsDispatchTest, AutoNeverResolvesToAuto) {
  kernels::ForceDispatch(kernels::DispatchMode::kAuto);
  EXPECT_NE(kernels::ResolvedDispatch(), kernels::DispatchMode::kAuto);
}

TEST(KernelsDispatchTest, GemmBitIdenticalAcrossForcedBackends) {
  const Shape s{37, 29, 53};
  const auto a = RandomVec(s.m * s.k, 19);
  const auto b = RandomVec(s.k * s.n, 20);
  std::vector<double> scalar_out(static_cast<size_t>(s.m * s.n), 0.0);
  std::vector<double> simd_out = scalar_out;
  {
    ScopedDispatch scoped(kernels::DispatchMode::kScalar);
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                  scalar_out.data(), s.n);
  }
  {
    ScopedDispatch scoped(kernels::DispatchMode::kSimd);
    kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, simd_out.data(),
                  s.n);
  }
  EXPECT_TRUE(BitEqual(scalar_out, simd_out));
}

// ---- Fused epilogues and element-wise lanes. --------------------------------

using kernels::Act;

constexpr double kLeak = 0.1;

/// Reference activation matching the kernel's formulas (incl. the stable
/// sigmoid branch), so comparisons can be exact where no reordering exists.
double RefAct(Act act, double x) {
  switch (act) {
    case Act::kNone:
      return x;
    case Act::kRelu:
      return x > 0 ? x : 0.0;
    case Act::kLeakyRelu:
      return x > 0 ? x : kLeak * x;
    case Act::kSigmoid:
      return x >= 0 ? 1.0 / (1.0 + std::exp(-x))
                    : std::exp(x) / (1.0 + std::exp(x));
    case Act::kTanh:
      return std::tanh(x);
    case Act::kSoftplus:
      return std::max(x, 0.0) + std::log1p(std::exp(-std::fabs(x)));
  }
  return x;
}

const Act kAllActs[] = {Act::kNone,    Act::kRelu, Act::kLeakyRelu,
                        Act::kSigmoid, Act::kTanh, Act::kSoftplus};

TEST(KernelsEpilogueTest, ScaleMatchesElementwiseReferenceBitwise) {
  for (int64_t n : {0, 1, 5, 64, 131}) {
    const auto x0 = RandomVec(n, 21);
    auto want = x0;
    for (auto& v : want) v *= -0.37;
    auto got = x0;
    kernels::Scale(n, -0.37, got.data());
    EXPECT_TRUE(BitEqual(want, got)) << n;
  }
}

TEST(KernelsEpilogueTest, BiasActInPlaceMatchesReferenceAndStashesPre) {
  const int64_t m = 7, n = 13, ldc = 16;  // ldc > n exercises the stride.
  for (Act act : kAllActs) {
    auto c = RandomVec(m * ldc, 22);
    const auto c0 = c;
    const auto bias = RandomVec(n, 23);
    std::vector<double> pre(static_cast<size_t>(m * ldc), -77.0);
    kernels::BiasActInPlace(m, n, c.data(), ldc, bias.data(), act, kLeak,
                            pre.data());
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        const double want_pre = c0[i * ldc + j] + bias[j];
        EXPECT_EQ(pre[i * ldc + j], want_pre);
        EXPECT_EQ(c[i * ldc + j], RefAct(act, want_pre));
      }
      // Padding between rows must be untouched.
      for (int64_t j = n; j < ldc; ++j) EXPECT_EQ(c[i * ldc + j], c0[i * ldc + j]);
    }
  }
}

TEST(KernelsEpilogueTest, BiasActInPlaceNullBiasAndNullPre) {
  const int64_t m = 3, n = 5;
  auto c = RandomVec(m * n, 24);
  const auto c0 = c;
  kernels::BiasActInPlace(m, n, c.data(), n, nullptr, Act::kTanh, 0.0, nullptr);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], std::tanh(c0[i]));
}

TEST(KernelsEpilogueTest, GemmBiasActMatchesGemmThenEpilogue) {
  for (const Shape& s : {Shape{3, 5, 4}, Shape{13, 29, 31}, Shape{65, 33, 129}}) {
    const auto a = RandomVec(s.m * s.k, 25);
    const auto b = RandomVec(s.k * s.n, 26);
    const auto bias = RandomVec(s.n, 27);
    for (Act act : kAllActs) {
      std::vector<double> want(static_cast<size_t>(s.m * s.n), 0.0);
      kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, want.data(),
                    s.n);
      std::vector<double> want_pre = want;
      kernels::BiasActInPlace(s.m, s.n, want.data(), s.n, bias.data(), act,
                              kLeak, want_pre.data());
      std::vector<double> got(static_cast<size_t>(s.m * s.n), 99.0);  // Not 0:
      // GemmBiasAct must zero C itself (it is = not +=).
      std::vector<double> got_pre(got.size(), 0.0);
      kernels::GemmBiasAct(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                           bias.data(), got.data(), s.n, act, kLeak,
                           got_pre.data());
      EXPECT_TRUE(BitEqual(want, got)) << static_cast<int>(act);
      EXPECT_TRUE(BitEqual(want_pre, got_pre)) << static_cast<int>(act);
    }
  }
}

TEST(KernelsEpilogueTest, GemmBiasActBitIdenticalAcrossForcedBackends) {
  const Shape s{31, 27, 45};
  const auto a = RandomVec(s.m * s.k, 28);
  const auto b = RandomVec(s.k * s.n, 29);
  const auto bias = RandomVec(s.n, 30);
  for (Act act : kAllActs) {
    std::vector<double> scalar_out(static_cast<size_t>(s.m * s.n), 0.0);
    std::vector<double> simd_out = scalar_out;
    {
      ScopedDispatch scoped(kernels::DispatchMode::kScalar);
      kernels::GemmBiasAct(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                           bias.data(), scalar_out.data(), s.n, act, kLeak,
                           nullptr);
    }
    {
      ScopedDispatch scoped(kernels::DispatchMode::kSimd);
      kernels::GemmBiasAct(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                           bias.data(), simd_out.data(), s.n, act, kLeak,
                           nullptr);
    }
    EXPECT_TRUE(BitEqual(scalar_out, simd_out)) << static_cast<int>(act);
  }
}

TEST(KernelsEpilogueTest, ActBackwardMulMatchesAnalyticDerivatives) {
  const int64_t n = 257;
  const auto pre = RandomVec(n, 31);
  const auto g = RandomVec(n, 32);
  for (Act act : kAllActs) {
    std::vector<double> out(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
      out[static_cast<size_t>(i)] = RefAct(act, pre[static_cast<size_t>(i)]);
    std::vector<double> dpre(static_cast<size_t>(n), 0.0);
    kernels::ActBackwardMul(act, kLeak, n, g.data(), out.data(), pre.data(),
                            dpre.data());
    for (int64_t i = 0; i < n; ++i) {
      const double x = pre[static_cast<size_t>(i)];
      const double y = out[static_cast<size_t>(i)];
      double deriv = 1.0;
      switch (act) {
        case Act::kNone:
          deriv = 1.0;
          break;
        case Act::kRelu:
          deriv = x > 0 ? 1.0 : 0.0;
          break;
        case Act::kLeakyRelu:
          deriv = x > 0 ? 1.0 : kLeak;
          break;
        case Act::kSigmoid:
          deriv = y * (1.0 - y);
          break;
        case Act::kTanh:
          deriv = 1.0 - y * y;
          break;
        case Act::kSoftplus:
          deriv = RefAct(Act::kSigmoid, x);
          break;
      }
      EXPECT_NEAR(dpre[static_cast<size_t>(i)], g[static_cast<size_t>(i)] * deriv,
                  1e-15)
          << static_cast<int>(act) << " at " << i;
    }
  }
}

TEST(KernelsEpilogueTest, ColSumAccumMatchesNaiveColumnSums) {
  const int64_t m = 9, n = 7, lds = 11;
  const auto src = RandomVec(m * lds, 33);
  const auto dst0 = RandomVec(n, 34);  // Nonzero dst exercises +=.
  auto want = dst0;
  for (int64_t j = 0; j < n; ++j) {
    double s = want[static_cast<size_t>(j)];
    for (int64_t i = 0; i < m; ++i) s += src[static_cast<size_t>(i * lds + j)];
    want[static_cast<size_t>(j)] = s;
  }
  auto got = dst0;
  kernels::ColSumAccum(m, n, src.data(), lds, got.data());
  EXPECT_TRUE(BitEqual(want, got));
}

TEST(KernelsOptimizerTest, AdamUpdateMatchesScalarRecurrence) {
  const int64_t n = 37;
  const double lr = 1e-3, beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const auto g = RandomVec(n, 35);
  auto m_got = RandomVec(n, 36);
  auto v_got = RandomVec(n, 37);
  for (auto& v : v_got) v = std::fabs(v);  // Second moments are nonnegative.
  auto p_got = RandomVec(n, 38);
  auto m_want = m_got, v_want = v_got, p_want = p_got;
  const double bc1 = 1.0 - std::pow(beta1, 5), bc2 = 1.0 - std::pow(beta2, 5);
  for (int64_t i = 0; i < n; ++i) {
    const size_t s = static_cast<size_t>(i);
    m_want[s] = beta1 * m_want[s] + (1.0 - beta1) * g[s];
    v_want[s] = beta2 * v_want[s] + (1.0 - beta2) * g[s] * g[s];
    p_want[s] -= lr * (m_want[s] / bc1) / (std::sqrt(v_want[s] / bc2) + eps);
  }
  kernels::AdamUpdate(n, lr, beta1, beta2, eps, bc1, bc2, g.data(),
                      m_got.data(), v_got.data(), p_got.data());
  // The kernels TU may be compiled with FMA contraction (see GemmUsesFma),
  // this TU is not — so the comparison is tight-tolerance, not bitwise. The
  // lane itself is deterministic by construction (one implementation, no
  // reordering), which the dispatch/thread-identity tests cover elsewhere.
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    EXPECT_NEAR(m_got[i], m_want[i], 1e-14);
    EXPECT_NEAR(v_got[i], v_want[i], 1e-14);
    EXPECT_NEAR(p_got[i], p_want[i], 1e-14);
  }
}

TEST(KernelsOptimizerTest, SgdMomentumUpdateMatchesScalarRecurrence) {
  const int64_t n = 29;
  const double lr = 0.01, momentum = 0.9;
  const auto g = RandomVec(n, 39);
  auto vel_got = RandomVec(n, 40);
  auto p_got = RandomVec(n, 41);
  auto vel_want = vel_got, p_want = p_got;
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    vel_want[i] = momentum * vel_want[i] - lr * g[i];
    p_want[i] += vel_want[i];
  }
  kernels::SgdMomentumUpdate(n, lr, momentum, g.data(), vel_got.data(),
                             p_got.data());
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    EXPECT_NEAR(vel_got[i], vel_want[i], 1e-14);
    EXPECT_NEAR(p_got[i], p_want[i], 1e-14);
  }
}

TEST(AlignedBufferTest, DataIsCacheLineAlignedAndMoveTransfersOwnership) {
  base::AlignedBuffer<double> buf(37);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) %
                base::AlignedBuffer<double>::kAlignment,
            0u);
  EXPECT_EQ(buf.size(), 37u);
  double* p = buf.data();
  base::AlignedBuffer<double> moved = std::move(buf);
  EXPECT_EQ(moved.data(), p);
  EXPECT_EQ(buf.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  base::AlignedBuffer<double> empty(0);
  EXPECT_EQ(empty.data(), nullptr);
}

}  // namespace
}  // namespace tsg
