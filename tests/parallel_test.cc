// Tests for the parallel execution layer: ThreadPool/ParallelFor semantics
// (coverage, grain edge cases, nesting, exceptions, ordered reductions) and the
// determinism contract — every parallelized kernel and every measure in
// DefaultMeasureSuite must produce byte-identical results whether the pool runs
// 1-wide or 4-wide (the in-process equivalent of TSG_THREADS=1 vs TSG_THREADS=4,
// which seeds the pool at startup).

#include "base/thread_pool.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "core/harness.h"
#include "core/measures.h"
#include "data/simulators.h"
#include "distance/distance.h"
#include "embed/embedder.h"
#include "embed/tsne.h"
#include "linalg/matrix.h"

namespace tsg {
namespace {

using base::ParallelFor;
using base::ParallelMap;
using base::ParallelMapReduce;
using base::ParallelSum;
using base::ThreadPool;
using linalg::Matrix;

/// Forces the global pool to `n`-way execution for the duration of a scope.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int n) { ThreadPool::Global().SetMaxParallelism(n); }
  ~ScopedParallelism() { ThreadPool::Global().SetMaxParallelism(0); }
};

TEST(ThreadPoolTest, ConstructorClampsAndReportsParallelism) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.max_parallelism(), 3);
  ThreadPool clamped(-2);
  EXPECT_EQ(clamped.max_parallelism(), 1);
}

TEST(ThreadPoolTest, SetMaxParallelismGrowsAndRestores) {
  ThreadPool pool(1);
  pool.SetMaxParallelism(4);
  EXPECT_EQ(pool.max_parallelism(), 4);
  pool.SetMaxParallelism(0);  // Restores the configured size.
  EXPECT_EQ(pool.max_parallelism(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedParallelism scoped(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 7, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST(ParallelForTest, GrainZeroTreatedAsOne) {
  ScopedParallelism scoped(4);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 100, 0, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoOps) {
  ScopedParallelism scoped(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { calls++; });
  ParallelFor(5, 2, 1, [&](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NestedParallelForFallsBackToSerial) {
  ScopedParallelism scoped(4);
  EXPECT_FALSE(base::InParallelRegion());
  std::atomic<bool> saw_region_flag{false};
  std::atomic<bool> nested_stayed_on_thread{true};
  ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    if (base::InParallelRegion()) saw_region_flag = true;
    const std::thread::id outer = std::this_thread::get_id();
    // The nested loop must execute inline on the same thread, not on the pool.
    ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
      if (std::this_thread::get_id() != outer) nested_stayed_on_thread = false;
    });
  });
  EXPECT_TRUE(saw_region_flag);
  EXPECT_TRUE(nested_stayed_on_thread);
  EXPECT_FALSE(base::InParallelRegion());
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ScopedParallelism scoped(4);
  EXPECT_THROW(ParallelFor(0, 256, 1,
                           [&](int64_t b, int64_t) {
                             if (b >= 64) throw std::runtime_error("chunk failed");
                           }),
               std::runtime_error);
  // The pool must remain usable after an exception.
  EXPECT_EQ(ParallelSum(100, 1, [](int64_t i) { return double(i); }), 4950.0);
}

TEST(ParallelMapReduceTest, FoldIsStrictlyIndexOrdered) {
  ScopedParallelism scoped(4);
  // String concatenation is non-commutative: any out-of-order fold scrambles it.
  const std::string joined = ParallelMapReduce<std::string>(
      26, 1, [](int64_t i) { return std::string(1, static_cast<char>('a' + i)); },
      std::string(),
      [](std::string acc, std::string part) { return acc + part; });
  EXPECT_EQ(joined, "abcdefghijklmnopqrstuvwxyz");
}

TEST(ParallelMapReduceTest, SumMatchesSerialBitwise) {
  auto value = [](int64_t i) { return 1.0 / (1.0 + static_cast<double>(i) * 0.37); };
  double serial;
  {
    ScopedParallelism scoped(1);
    serial = ParallelSum(5000, 16, value);
  }
  ScopedParallelism scoped(4);
  const double parallel = ParallelSum(5000, 16, value);
  EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0);
}

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  rng.FillNormal(m.data(), m.size());
  return m;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

TEST(ParallelDeterminismTest, MatMulFamilyBitIdentical) {
  // 80x90 * 90x70 is above the GEMM parallel threshold (~64^3 flops).
  const Matrix a = RandomMatrix(80, 90, 1);
  const Matrix b = RandomMatrix(90, 70, 2);
  const Matrix at = RandomMatrix(90, 80, 3);
  Matrix serial_ab, serial_ta, serial_tb;
  {
    ScopedParallelism scoped(1);
    serial_ab = linalg::MatMul(a, b);
    serial_ta = linalg::MatMulTransA(at, b);
    serial_tb = linalg::MatMulTransB(a, RandomMatrix(70, 90, 4));
  }
  ScopedParallelism scoped(4);
  EXPECT_TRUE(BitIdentical(serial_ab, linalg::MatMul(a, b)));
  EXPECT_TRUE(BitIdentical(serial_ta, linalg::MatMulTransA(at, b)));
  EXPECT_TRUE(BitIdentical(serial_tb, linalg::MatMulTransB(a, RandomMatrix(70, 90, 4))));
}

TEST(ParallelDeterminismTest, RbfMmdBitIdentical) {
  const Matrix a = RandomMatrix(48, 20, 5);
  const Matrix b = RandomMatrix(40, 20, 6);
  double serial_median, serial_fixed;
  {
    ScopedParallelism scoped(1);
    serial_median = distance::RbfMmd(a, b);
    serial_fixed = distance::RbfMmd(a, b, 0.5);
  }
  ScopedParallelism scoped(4);
  EXPECT_EQ(serial_median, distance::RbfMmd(a, b));
  EXPECT_EQ(serial_fixed, distance::RbfMmd(a, b, 0.5));
}

TEST(ParallelDeterminismTest, TsneBitIdentical) {
  const Matrix data = RandomMatrix(36, 12, 7);
  embed::TsneOptions options;
  options.iterations = 30;
  Matrix serial;
  {
    ScopedParallelism scoped(1);
    serial = embed::Tsne(data, options);
  }
  ScopedParallelism scoped(4);
  EXPECT_TRUE(BitIdentical(serial, embed::Tsne(data, options)));
}

TEST(DtwIndependentTest, StridedPathMatchesColumnwiseReference) {
  const Matrix a = RandomMatrix(40, 5, 8);
  const Matrix b = RandomMatrix(40, 5, 9);
  for (const int64_t band : {int64_t{-1}, int64_t{3}}) {
    // Reference: per-column dependent DTW on materialized columns (the old path).
    double total_sq = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) {
      const double d = distance::DtwDistance(a.Col(j), b.Col(j), band);
      total_sq += d * d;
    }
    EXPECT_EQ(std::sqrt(total_sq), distance::DtwIndependent(a, b, band));
  }
  // Single dimension: independent equals dependent exactly.
  const Matrix u = RandomMatrix(30, 1, 10);
  const Matrix v = RandomMatrix(30, 1, 11);
  EXPECT_EQ(distance::DtwDistance(u, v), distance::DtwIndependent(u, v));
}

TEST(ParallelDeterminismTest, EmbedderBitIdentical) {
  const std::vector<Matrix> samples = [&] {
    std::vector<Matrix> out;
    for (int i = 0; i < 150; ++i) out.push_back(RandomMatrix(10, 3, 100 + i));
    return out;
  }();
  embed::SequenceEmbedder::Options options;
  options.epochs = 2;
  Matrix serial;
  {
    ScopedParallelism scoped(1);
    embed::SequenceEmbedder embedder(3, options, 99);
    embedder.Fit(samples);
    serial = embedder.Embed(samples);
  }
  ScopedParallelism scoped(4);
  embed::SequenceEmbedder embedder(3, options, 99);
  embedder.Fit(samples);
  EXPECT_TRUE(BitIdentical(serial, embedder.Embed(samples)));
}

/// The tentpole acceptance test: every measure in the default suite — including the
/// TSTR measures that train networks and C-FID through the shared embedder — must
/// score byte-identically whether the harness evaluates 1-wide or 4-wide.
TEST(ParallelDeterminismTest, MeasureSuiteBitIdenticalAcrossThreadCounts) {
  const core::Dataset real("sine-real", data::SineBenchmark(20, 12, 2, /*seed=*/31));
  const core::Dataset test("sine-test", data::SineBenchmark(8, 12, 2, /*seed=*/32));
  const core::Dataset generated("sine-gen",
                                data::SineBenchmark(20, 12, 2, /*seed=*/33));

  auto run_suite = [&](int parallelism) {
    ScopedParallelism scoped(parallelism);
    core::HarnessOptions options;
    options.stochastic_repeats = 2;
    options.include_ps_entire = true;
    options.embedder.epochs = 2;
    options.seed = 7;
    core::Harness harness(options);  // Fresh harness: embedder fit included.
    return harness.EvaluateGenerated(real, test, generated, "sine").value();
  };

  const auto serial = run_suite(1);
  const auto parallel = run_suite(4);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 10u);  // Full paper suite incl. PS(entire).
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, parallel[i].first);
    EXPECT_EQ(std::memcmp(&serial[i].second.mean, &parallel[i].second.mean,
                          sizeof(double)),
              0)
        << serial[i].first << ": " << serial[i].second.mean << " vs "
        << parallel[i].second.mean;
    EXPECT_EQ(std::memcmp(&serial[i].second.std, &parallel[i].second.std,
                          sizeof(double)),
              0)
        << serial[i].first;
  }
}

}  // namespace
}  // namespace tsg
