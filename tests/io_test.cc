#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "io/csv.h"
#include "io/table.h"

namespace tsg::io {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path = TempPath("tsg_csv_roundtrip.csv");
  const linalg::Matrix data = {{1.5, -2.0}, {3.25, 4.0}};
  ASSERT_TRUE(WriteCsv(path, {"a", "b"}, data).ok());
  auto read = ReadCsv(path, /*skip_header=*/true);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(linalg::AllClose(read.value(), data, 1e-9));
  std::filesystem::remove(path);
}

TEST(CsvTest, NoHeaderRoundTrip) {
  const std::string path = TempPath("tsg_csv_nh.csv");
  const linalg::Matrix data = {{7.0}};
  ASSERT_TRUE(WriteCsv(path, {}, data).ok());
  auto read = ReadCsv(path, /*skip_header=*/false);
  ASSERT_TRUE(read.ok());
  EXPECT_DOUBLE_EQ(read.value()(0, 0), 7.0);
  std::filesystem::remove(path);
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path/x.csv", false).ok());
}

TEST(CsvTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteCsv("/nonexistent/dir/x.csv", {}, linalg::Matrix(1, 1)).ok());
}

TEST(CsvTest, NonNumericCellFails) {
  const std::string path = TempPath("tsg_csv_bad.csv");
  {
    std::ofstream out(path);
    out << "1,hello\n";
  }
  auto read = ReadCsv(path, false);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(CsvTest, RaggedRowsFail) {
  const std::string path = TempPath("tsg_csv_ragged.csv");
  {
    std::ofstream out(path);
    out << "1,2\n3\n";
  }
  EXPECT_FALSE(ReadCsv(path, false).ok());
  std::filesystem::remove(path);
}

TEST(CsvTest, RowsWriter) {
  const std::string path = TempPath("tsg_csv_rows.csv");
  ASSERT_TRUE(WriteCsvRows(path, {{"name", "score"}, {"TimeVAE", "0.1"}}).ok());
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "name,score");
  EXPECT_EQ(line2, "TimeVAE,0.1");
  std::filesystem::remove(path);
}

TEST(TableTest, AlignedRendering) {
  Table table({"method", "score"});
  table.AddRow({"RGAN", "0.45"});
  table.AddRow({"TimeVQVAE", "0.1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("TimeVQVAE"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(-0.5, 3), "-0.500");
  EXPECT_EQ(Table::MeanStd(0.1, 0.02, 2), "0.10+-0.02");
}

TEST(TableDeathTest, WrongWidthAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "TSG_CHECK");
}

}  // namespace
}  // namespace tsg::io
