#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/atomic_file.h"
#include "io/csv.h"
#include "io/json.h"
#include "io/json_parse.h"
#include "io/lease.h"
#include "io/table.h"

namespace tsg::io {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path = TempPath("tsg_csv_roundtrip.csv");
  const linalg::Matrix data = {{1.5, -2.0}, {3.25, 4.0}};
  ASSERT_TRUE(WriteCsv(path, {"a", "b"}, data).ok());
  auto read = ReadCsv(path, /*skip_header=*/true);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(linalg::AllClose(read.value(), data, 1e-9));
  std::filesystem::remove(path);
}

TEST(CsvTest, NoHeaderRoundTrip) {
  const std::string path = TempPath("tsg_csv_nh.csv");
  const linalg::Matrix data = {{7.0}};
  ASSERT_TRUE(WriteCsv(path, {}, data).ok());
  auto read = ReadCsv(path, /*skip_header=*/false);
  ASSERT_TRUE(read.ok());
  EXPECT_DOUBLE_EQ(read.value()(0, 0), 7.0);
  std::filesystem::remove(path);
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path/x.csv", false).ok());
}

TEST(CsvTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteCsv("/nonexistent/dir/x.csv", {}, linalg::Matrix(1, 1)).ok());
}

TEST(CsvTest, NonNumericCellFails) {
  const std::string path = TempPath("tsg_csv_bad.csv");
  {
    std::ofstream out(path);
    out << "1,hello\n";
  }
  auto read = ReadCsv(path, false);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(CsvTest, RaggedRowsFail) {
  const std::string path = TempPath("tsg_csv_ragged.csv");
  {
    std::ofstream out(path);
    out << "1,2\n3\n";
  }
  EXPECT_FALSE(ReadCsv(path, false).ok());
  std::filesystem::remove(path);
}

TEST(CsvTest, RowsWriter) {
  const std::string path = TempPath("tsg_csv_rows.csv");
  ASSERT_TRUE(WriteCsvRows(path, {{"name", "score"}, {"TimeVAE", "0.1"}}).ok());
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "name,score");
  EXPECT_EQ(line2, "TimeVAE,0.1");
  std::filesystem::remove(path);
}

TEST(CsvTest, TrailingGarbageInNumericCellFails) {
  // "1.5abc" used to silently parse as 1.5 via std::stod.
  const std::string path = TempPath("tsg_csv_garbage.csv");
  {
    std::ofstream out(path);
    out << "1.5abc,2.0\n";
  }
  auto read = ReadCsv(path, false);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(CsvTest, CrlfLineEndings) {
  const std::string path = TempPath("tsg_csv_crlf.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\r\n1,2\r\n3,4\r\n";
  }
  auto read = ReadCsv(path, /*skip_header=*/true);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().rows(), 2);
  EXPECT_DOUBLE_EQ(read.value()(1, 1), 4.0);
  std::filesystem::remove(path);
}

TEST(CsvTest, TrailingEmptyFieldIsKept) {
  // "1,2,\n" has three fields; the last is empty, which for a numeric read is an
  // error — it must not be silently dropped into a valid 2-column row.
  const std::string path = TempPath("tsg_csv_trailing.csv");
  {
    std::ofstream out(path);
    out << "1,2,\n";
  }
  auto rows = ReadCsvRows(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  ASSERT_EQ(rows.value()[0].size(), 3u);
  EXPECT_EQ(rows.value()[0][2], "");
  EXPECT_FALSE(ReadCsv(path, false).ok());  // Empty cell is not a number.
  std::filesystem::remove(path);
}

TEST(CsvTest, EmptyAndHeaderOnlyFilesFail) {
  const std::string path = TempPath("tsg_csv_empty.csv");
  {
    std::ofstream out(path);
  }
  auto empty = ReadCsv(path, /*skip_header=*/false);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  {
    std::ofstream out(path);
    out << "a,b\n";
  }
  auto header_only = ReadCsv(path, /*skip_header=*/true);
  ASSERT_FALSE(header_only.ok());
  EXPECT_EQ(header_only.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(CsvTest, QuotedFieldRoundTrip) {
  // RFC-4180: commas, quotes, and newlines inside a field survive a
  // WriteCsvRows -> ReadCsvRows round trip.
  const std::string path = TempPath("tsg_csv_quoted.csv");
  const std::vector<std::vector<std::string>> rows = {
      {"method", "error"},
      {"TimeGAN", "fit failed: loss=nan, epoch 3"},
      {"RGAN", "line one\nline \"two\""},
      {"LS4", ""},
  };
  ASSERT_TRUE(WriteCsvRows(path, rows).ok());
  auto read = ReadCsvRows(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), rows);
  std::filesystem::remove(path);
}

TEST(CsvTest, EscapeCsvFieldQuotesOnlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(EscapeCsvField("two\nlines"), "\"two\nlines\"");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  const std::string path = TempPath("tsg_csv_unterminated.csv");
  {
    std::ofstream out(path);
    out << "\"never closed,1\n";
  }
  EXPECT_FALSE(ReadCsvRows(path).ok());
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, WritesContentAndLeavesNoTempFile) {
  const std::string path = TempPath("tsg_atomic.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "hello\n").ok());
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), "hello\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Overwrite is atomic too: the new content fully replaces the old.
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  std::ifstream in2(path);
  std::ostringstream os2;
  os2 << in2.rdbuf();
  EXPECT_EQ(os2.str(), "v2");
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, BadDirectoryFails) {
  EXPECT_FALSE(WriteFileAtomic("/nonexistent/dir/x.txt", "x").ok());
}

TEST(LeaseTest, AcquireIsExclusive) {
  const std::string path = TempPath("tsg_lease_excl.lease");
  std::filesystem::remove(path);
  const auto first = AcquireLease(path, LeaseOwnerToken());
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value());
  const auto second = AcquireLease(path, "other:1:1");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value());  // Already held, not an error.
  ASSERT_TRUE(ReleaseLease(path, LeaseOwnerToken()).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(LeaseTest, ReleaseRefusesForeignToken) {
  const std::string path = TempPath("tsg_lease_foreign.lease");
  std::filesystem::remove(path);
  ASSERT_TRUE(AcquireLease(path, "thief:12:34").value());
  const Status release = ReleaseLease(path, LeaseOwnerToken());
  EXPECT_EQ(release.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(std::filesystem::exists(path));  // The holder's file survives.
  std::filesystem::remove(path);
}

TEST(LeaseTest, ProbeClassifiesOwnLeaseAsLive) {
  const std::string path = TempPath("tsg_lease_live.lease");
  std::filesystem::remove(path);
  ASSERT_TRUE(AcquireLease(path, LeaseOwnerToken()).value());
  // Our own pid is alive, so even a zero TTL cannot mark the lease stale.
  EXPECT_EQ(ProbeLease(path, 0.0), LeaseState::kLive);
  std::filesystem::remove(path);
  EXPECT_EQ(ProbeLease(path, 0.0), LeaseState::kFree);
}

TEST(LeaseTest, ProbeDetectsDeadSameHostOwner) {
  // A forked child that has already exited and been reaped gives a pid that is
  // guaranteed dead — the exact state a killed worker leaves behind.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);

  char host[256] = {};
  ASSERT_EQ(gethostname(host, sizeof(host) - 1), 0);
  const std::string path = TempPath("tsg_lease_dead.lease");
  std::filesystem::remove(path);
  const std::string dead_token =
      std::string(host) + ":" + std::to_string(child) + ":feed";
  ASSERT_TRUE(AcquireLease(path, dead_token).value());
  // Dead owners are reclaimable immediately, with any TTL.
  EXPECT_EQ(ProbeLease(path, 1e9), LeaseState::kDead);
  std::filesystem::remove(path);
}

TEST(LeaseTest, ProbeAppliesTtlToForeignHosts) {
  const std::string path = TempPath("tsg_lease_ttl.lease");
  std::filesystem::remove(path);
  // A foreign host cannot be pid-probed, so only the age TTL applies.
  ASSERT_TRUE(AcquireLease(path, "some-other-host:1:1").value());
  EXPECT_EQ(ProbeLease(path, 1e9), LeaseState::kLive);
  EXPECT_EQ(ProbeLease(path, 0.0), LeaseState::kDead);
  std::filesystem::remove(path);
}

TEST(LeaseTest, ForeignHostLeaseStealsOnlyAfterTtlExpiry) {
  const std::string path = TempPath("tsg_lease_foreign_steal.lease");
  std::filesystem::remove(path);
  ASSERT_TRUE(AcquireLease(path, "other-host:4242:beef").value());

  // A fresh foreign lease is live under any reasonable TTL, so a cooperating
  // worker must refuse to steal — the owner cannot be pid-probed.
  EXPECT_EQ(ProbeLease(path, 3600.0), LeaseState::kLive);

  // Back-date the lease file past the TTL: now the mtime rule declares the
  // foreign owner dead and the full steal protocol applies.
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now() -
                std::chrono::hours(2));
  EXPECT_EQ(ProbeLease(path, 3600.0), LeaseState::kDead);

  const auto broke = BreakLease(path, LeaseOwnerToken());
  ASSERT_TRUE(broke.ok());
  EXPECT_TRUE(broke.value());
  ASSERT_TRUE(AcquireLease(path, LeaseOwnerToken()).value());
  EXPECT_EQ(ProbeLease(path, 3600.0), LeaseState::kLive);  // Ours, alive.
  ASSERT_TRUE(ReleaseLease(path, LeaseOwnerToken()).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(LeaseTest, UnparseableTokenIsTreatedAsForeign) {
  const std::string path = TempPath("tsg_lease_garbled.lease");
  std::filesystem::remove(path);
  // A token with no host:pid:nonce shape cannot be probed; only TTL applies.
  ASSERT_TRUE(AcquireLease(path, "not a lease token").value());
  EXPECT_EQ(ProbeLease(path, 1e9), LeaseState::kLive);
  EXPECT_EQ(ProbeLease(path, 0.0), LeaseState::kDead);
  std::filesystem::remove(path);
}

TEST(LeaseTest, BreakLeaseHandsExactlyOneStealerTheWin) {
  const std::string path = TempPath("tsg_lease_steal.lease");
  std::filesystem::remove(path);
  ASSERT_TRUE(AcquireLease(path, "casualty:999999:0").value());

  constexpr int kStealers = 8;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  threads.reserve(kStealers);
  for (int i = 0; i < kStealers; ++i) {
    threads.emplace_back([&, i] {
      const auto broke = BreakLease(path, "stealer:1:" + std::to_string(i));
      if (broke.ok() && broke.value()) wins.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_FALSE(std::filesystem::exists(path));
  // No stale sidecars survive a successful break.
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::temp_directory_path())) {
    EXPECT_EQ(entry.path().filename().string().find("tsg_lease_steal"),
              std::string::npos)
        << entry.path();
  }
}

TEST(LeaseTest, ConcurrentAcquireHandsExactlyOneClaimantTheWin) {
  const std::string path = TempPath("tsg_lease_race.lease");
  std::filesystem::remove(path);
  constexpr int kClaimants = 8;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  threads.reserve(kClaimants);
  for (int i = 0; i < kClaimants; ++i) {
    threads.emplace_back([&, i] {
      const auto got = AcquireLease(path, "claimant:1:" + std::to_string(i));
      if (got.ok() && got.value()) wins.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("he said \"hi\"\n");
  json.Key("values").BeginArray().Int(1).Number(0.5).Null().EndArray();
  json.Key("ok").Bool(true);
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"he said \\\"hi\\\"\\n\","
            "\"values\":[1,0.5,null],\"ok\":true}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray().Number(std::nan("")).Number(1.0).EndArray();
  EXPECT_EQ(json.str(), "[null,1]");
}

TEST(JsonParseTest, ParsesEveryValueKind) {
  const auto doc = JsonValue::Parse(
      " {\"n\":null,\"t\":true,\"f\":false,\"i\":-42,\"d\":2.5e3,"
      "\"s\":\"hi\",\"a\":[1,[2]],\"o\":{\"k\":\"v\"}} ");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& v = doc.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.Find("n")->is_null());
  EXPECT_TRUE(v.GetBool("t", false));
  EXPECT_FALSE(v.GetBool("f", true));
  EXPECT_EQ(v.GetInt("i", 0), -42);
  EXPECT_EQ(v.GetNumber("d", 0.0), 2500.0);
  EXPECT_EQ(v.GetString("s", ""), "hi");
  ASSERT_TRUE(v.Find("a")->is_array());
  ASSERT_EQ(v.Find("a")->array_items().size(), 2u);
  EXPECT_EQ(v.Find("a")->array_items()[1].array_items()[0].number_value(), 2.0);
  EXPECT_EQ(v.Find("o")->GetString("k", ""), "v");
}

TEST(JsonParseTest, RoundTripsJsonWriterOutput) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("line\nbreak \"quoted\" \\ slash");
  json.Key("values").BeginArray().Int(7).Number(0.125).Null().EndArray();
  json.EndObject();
  const auto doc = JsonValue::Parse(json.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().GetString("name", ""),
            "line\nbreak \"quoted\" \\ slash");
  EXPECT_EQ(doc.value().Find("values")->array_items()[1].number_value(), 0.125);
}

TEST(JsonParseTest, DecodesEscapesAndSurrogatePairs) {
  const auto doc = JsonValue::Parse(
      "\"\\u0041\\u00e9\\u20ac\\ud83d\\ude00\\t\\/\"");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // A, e-acute, euro sign, and an emoji through a UTF-16 surrogate pair.
  EXPECT_EQ(doc.value().string_value(), "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80\t/");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83d\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83dx\"").ok());
}

TEST(JsonParseTest, RejectsNonStrictGrammar) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());   // Trailing comma.
  EXPECT_FALSE(JsonValue::Parse("[1,2] junk").ok());   // Trailing bytes.
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());      // Single quotes.
  EXPECT_FALSE(JsonValue::Parse("NaN").ok());          // No non-finite literals.
  EXPECT_FALSE(JsonValue::Parse("// c\n1").ok());      // No comments.
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());    // Missing colon.
  EXPECT_FALSE(JsonValue::Parse("[01]").ok());         // Leading zero.
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("truth").ok());
}

TEST(JsonParseTest, ReportsByteOffsetOnError) {
  const auto doc = JsonValue::Parse("{\"ok\":tru}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("at byte"), std::string::npos)
      << doc.status().ToString();
}

TEST(JsonParseTest, EnforcesNestingDepthCap) {
  // 64 levels parse; past the cap is a syntax error, not a stack overflow.
  const std::string ok(64, '[');
  ASSERT_TRUE(JsonValue::Parse(ok + std::string(64, ']')).ok());
  const std::string deep(80, '[');
  EXPECT_FALSE(JsonValue::Parse(deep + std::string(80, ']')).ok());
}

TEST(JsonParseTest, TypedLookupsFallBackOnAbsenceAndKindMismatch) {
  const auto doc =
      JsonValue::Parse("{\"s\":\"x\",\"i\":3,\"half\":2.5,\"big\":1e300}");
  ASSERT_TRUE(doc.ok());
  const JsonValue& v = doc.value();
  EXPECT_EQ(v.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(v.GetString("i", "dflt"), "dflt");  // Kind mismatch.
  EXPECT_EQ(v.GetInt("s", -1), -1);
  EXPECT_EQ(v.GetInt("half", -1), -1);  // Non-integral number.
  EXPECT_EQ(v.GetInt("big", -1), -1);   // Not representable in int64.
  EXPECT_EQ(v.GetInt("i", -1), 3);
  EXPECT_EQ(v.Find("missing"), nullptr);
  // Find on a non-object is a graceful nullptr.
  const auto arr = JsonValue::Parse("[1]");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ(arr.value().Find("k"), nullptr);
}

TEST(JsonParseTest, DuplicateKeysKeepFirstInFind) {
  const auto doc = JsonValue::Parse("{\"k\":1,\"k\":2}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().Find("k")->number_value(), 1.0);
  EXPECT_EQ(doc.value().object_items().size(), 2u);  // Both kept in order.
}

TEST(TableTest, AlignedRendering) {
  Table table({"method", "score"});
  table.AddRow({"RGAN", "0.45"});
  table.AddRow({"TimeVQVAE", "0.1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("TimeVQVAE"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(-0.5, 3), "-0.500");
  EXPECT_EQ(Table::MeanStd(0.1, 0.02, 2), "0.10+-0.02");
}

TEST(TableDeathTest, WrongWidthAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "TSG_CHECK");
}

}  // namespace
}  // namespace tsg::io
