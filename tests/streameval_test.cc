// Tests for the streaming evaluation subsystem (DESIGN.md §12): the
// streaming-exact contract (byte equality against the batch measures across
// window sizes, batch slicings, and thread counts), MDD's incremental
// histogram eviction, the Page–Hinkley drift detector, the Welford/Chan
// feature-Gaussian accumulator, and the per-tenant metric export.

#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/dataset.h"
#include "data/simulators.h"
#include "obs/metrics.h"
#include "streameval/drift.h"
#include "streameval/online_measures.h"
#include "streameval/stream_evaluator.h"

namespace tsg::streameval {
namespace {

using core::Dataset;

class ScopedParallelism {
 public:
  explicit ScopedParallelism(int n) {
    base::ThreadPool::Global().SetMaxParallelism(n);
  }
  ~ScopedParallelism() { base::ThreadPool::Global().SetMaxParallelism(0); }
};

Dataset SineDataset(int64_t count, uint64_t seed, int64_t l = 12,
                    int64_t n = 2) {
  return Dataset("sine", data::SineBenchmark(count, l, n, seed));
}

std::vector<Matrix> StreamSeries(int64_t count, uint64_t seed, int64_t l = 12,
                                 int64_t n = 2) {
  return data::SineBenchmark(count, l, n, seed);
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Runs `count` series through a fresh evaluator in `chunk`-sized batches and
/// returns the final partial-or-full-window snapshot.
std::map<std::string, double> RunStream(const Dataset& reference,
                                        const std::vector<Matrix>& stream,
                                        int64_t window, size_t chunk,
                                        bool verify_each_batch = false) {
  StreamEvalOptions options;
  options.window = window;
  auto eval = StreamEvaluator::Create(reference, options);
  EXPECT_TRUE(eval.ok()) << eval.status().ToString();
  for (size_t i = 0; i < stream.size(); i += chunk) {
    const size_t take = std::min(chunk, stream.size() - i);
    const std::vector<Matrix> batch(stream.begin() + i,
                                    stream.begin() + i + take);
    const Status status = eval.value()->Update(batch);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (verify_each_batch) {
      const Status exact = eval.value()->VerifyExactAgainstBatch();
      EXPECT_TRUE(exact.ok()) << exact.ToString();
    }
  }
  const auto snapshot = eval.value()->SnapshotNow();
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return snapshot.value();
}

// ---- The streaming-exact contract. ----

// The core guarantee: at every batch boundary, for every window size, the
// streaming snapshot is byte-identical to running the real batch measures on
// the window (VerifyExactAgainstBatch routes through src/core/measures.cc).
// Window sizes are chosen to exercise partial windows, windows smaller than
// the reference (pairing wraps), and windows larger than the ACD/MMD 256 caps'
// relevant branches.
TEST(StreamExactTest, MatchesBatchAcrossWindowSizes) {
  const Dataset reference = SineDataset(7, /*seed=*/3);
  const std::vector<Matrix> stream = StreamSeries(40, /*seed=*/91);
  for (const int64_t window : {3, 8, 32}) {
    RunStream(reference, stream, window, /*chunk=*/5,
              /*verify_each_batch=*/true);
  }
}

// Snapshots are a pure function of the window contents — how the stream was
// chunked into Update() calls must not change a single bit of any
// streaming-exact measure.
TEST(StreamExactTest, BatchSlicingDoesNotChangeExactMeasures) {
  const Dataset reference = SineDataset(6, /*seed=*/3);
  const std::vector<Matrix> stream = StreamSeries(23, /*seed=*/55);
  const auto whole = RunStream(reference, stream, /*window=*/8, stream.size());
  for (const size_t chunk : {size_t{1}, size_t{3}, size_t{7}}) {
    const auto sliced = RunStream(reference, stream, /*window=*/8, chunk);
    ASSERT_EQ(sliced.size(), whole.size());
    for (const auto& [name, value] : whole) {
      ASSERT_TRUE(sliced.count(name)) << name;
      if (name == "FGD") {
        // Sampled tier: Welford/Chan association varies with chunking.
        EXPECT_NEAR(sliced.at(name), value, 1e-9 * std::abs(value) + 1e-12);
      } else {
        EXPECT_TRUE(BitEqual(sliced.at(name), value))
            << name << ": " << sliced.at(name) << " vs " << value;
      }
    }
  }
}

// The exactness contract holds at any thread count: ParallelSum folds in index
// order regardless of how the map is scheduled, and the streaming snapshot
// re-folds the same per-item values through the same shapes.
TEST(StreamExactTest, ThreadCountDoesNotChangeSnapshots) {
  const Dataset reference = SineDataset(7, /*seed=*/3);
  const std::vector<Matrix> stream = StreamSeries(16, /*seed=*/77);
  std::map<std::string, double> serial;
  {
    ScopedParallelism scoped(1);
    serial = RunStream(reference, stream, /*window=*/8, /*chunk=*/4,
                       /*verify_each_batch=*/true);
  }
  {
    ScopedParallelism scoped(4);
    const auto threaded = RunStream(reference, stream, /*window=*/8,
                                    /*chunk=*/4, /*verify_each_batch=*/true);
    ASSERT_EQ(threaded.size(), serial.size());
    for (const auto& [name, value] : serial) {
      EXPECT_TRUE(BitEqual(threaded.at(name), value)) << name;
    }
  }
}

// Sliding far past the first window exercises MDD's Histogram::Remove path
// (integer counts make eviction lossless) and the cached-value eviction of
// ED/DTW/ACD; VerifyExactAgainstBatch would catch any residue from evicted
// series.
TEST(StreamExactTest, SlidingEvictionStaysExact) {
  const Dataset reference = SineDataset(5, /*seed=*/3);
  const std::vector<Matrix> stream = StreamSeries(30, /*seed=*/13);
  RunStream(reference, stream, /*window=*/4, /*chunk=*/3,
            /*verify_each_batch=*/true);
}

// A partial window (fewer series than `window`) is still snapshottable and
// still exact; with >= 2 series MMD participates too.
TEST(StreamExactTest, PartialWindowSnapshots) {
  const Dataset reference = SineDataset(6, /*seed=*/3);
  StreamEvalOptions options;
  options.window = 8;
  auto eval = StreamEvaluator::Create(reference, options);
  ASSERT_TRUE(eval.ok());
  ASSERT_TRUE(eval.value()->Update(StreamSeries(3, /*seed=*/21)).ok());
  EXPECT_EQ(eval.value()->series_seen(), 3);
  EXPECT_EQ(eval.value()->windows_completed(), 0);
  const auto snapshot = eval.value()->SnapshotNow();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot.value().count("ED"));
  EXPECT_TRUE(snapshot.value().count("MMD"));
  const Status exact = eval.value()->VerifyExactAgainstBatch();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
}

// A single-series window must omit MMD (the unbiased estimator needs two
// samples) instead of aborting inside distance::RbfMmd.
TEST(StreamExactTest, SingleSeriesWindowOmitsMmd) {
  const Dataset reference = SineDataset(6, /*seed=*/3);
  auto eval = StreamEvaluator::Create(reference, StreamEvalOptions());
  ASSERT_TRUE(eval.ok());
  ASSERT_TRUE(eval.value()->Update(StreamSeries(1, /*seed=*/21)).ok());
  const auto snapshot = eval.value()->SnapshotNow();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot.value().count("MMD"));
  EXPECT_TRUE(snapshot.value().count("ED"));
  const Status exact = eval.value()->VerifyExactAgainstBatch();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
}

TEST(StreamEvaluatorTest, CreateValidatesInputs) {
  EXPECT_FALSE(StreamEvaluator::Create(Dataset(), StreamEvalOptions()).ok());
  StreamEvalOptions bad;
  bad.window = 0;
  EXPECT_FALSE(StreamEvaluator::Create(SineDataset(4, 3), bad).ok());
}

TEST(StreamEvaluatorTest, RejectsShapeMismatchedSeries) {
  auto eval = StreamEvaluator::Create(SineDataset(4, 3), StreamEvalOptions());
  ASSERT_TRUE(eval.ok());
  const Status status =
      eval.value()->Update(StreamSeries(1, 5, /*l=*/9, /*n=*/2));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// ---- Metric export. ----

TEST(StreamEvaluatorTest, ExportsPerTenantGaugesAndCounters) {
  obs::MetricRegistry& metrics = obs::MetricRegistry::Global();
  const Dataset reference = SineDataset(6, /*seed=*/3);
  StreamEvalOptions options;
  options.window = 4;
  options.metric_prefix = "stream.test_tenant";
  auto eval = StreamEvaluator::Create(reference, options);
  ASSERT_TRUE(eval.ok());
  ASSERT_TRUE(eval.value()->Update(StreamSeries(8, /*seed=*/33)).ok());

  EXPECT_EQ(eval.value()->windows_completed(), 2);
  EXPECT_EQ(metrics.GetCounter("stream.test_tenant.windows").value(), 2);
  EXPECT_EQ(metrics.GetCounter("stream.test_tenant.series").value(), 8);
  const auto& last = eval.value()->last_snapshot();
  ASSERT_TRUE(last.count("ED"));
  EXPECT_TRUE(BitEqual(metrics.GetGauge("stream.test_tenant.ED").value(),
                       last.at("ED")));
  // The delta gauge mirrors the detector's raw value - baseline delta.
  ASSERT_TRUE(eval.value()->last_deltas().count("DTW"));
  EXPECT_TRUE(BitEqual(metrics.GetGauge("stream.test_tenant.DTW.delta").value(),
                       eval.value()->last_deltas().at("DTW")));
}

// ---- Drift detection. ----

TEST(PageHinkleyTest, SilentOnStationaryNoise) {
  PageHinkley ph;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(ph.Observe(0.01 * (rng.Uniform() - 0.5)));
  }
}

TEST(PageHinkleyTest, FiresOnUpwardShiftAndSelfResets) {
  PageHinkley ph;
  for (int i = 0; i < 20; ++i) ASSERT_FALSE(ph.Observe(0.0));
  bool fired = false;
  for (int i = 0; i < 50 && !fired; ++i) fired = ph.Observe(2.0);
  EXPECT_TRUE(fired);
  // Self-reset: the new regime becomes the baseline and stays quiet.
  for (int i = 0; i < 5; ++i) ph.Observe(2.0);
  EXPECT_LT(ph.rising(), 0.5);
}

TEST(PageHinkleyTest, TwoSidedCatchesDownwardShift) {
  PageHinkley ph;
  for (int i = 0; i < 20; ++i) ASSERT_FALSE(ph.Observe(1.0));
  bool fired = false;
  for (int i = 0; i < 50 && !fired; ++i) fired = ph.Observe(-1.0);
  EXPECT_TRUE(fired);
}

TEST(PageHinkleyTest, MinSamplesGatesEarlyAlarms) {
  DriftOptions options;
  options.min_samples = 10;
  PageHinkley ph(options);
  for (int i = 0; i < 9; ++i) EXPECT_FALSE(ph.Observe(100.0));
}

TEST(DriftDetectorTest, AlarmsOnRegimeShiftSilentWhenStationary) {
  DriftDetector stationary;
  for (int i = 0; i < 50; ++i) stationary.Observe("ED", 1.0);
  EXPECT_EQ(stationary.alarms_total(), 0);

  DriftDetector shifting;
  for (int i = 0; i < 10; ++i) shifting.Observe("ED", 1.0);
  for (int i = 0; i < 50; ++i) shifting.Observe("ED", 3.0);
  EXPECT_GT(shifting.alarms_total(), 0);
}

TEST(DriftDetectorTest, BaselineFreezesOnFirstObservation) {
  DriftDetector detector;
  const DriftDetector::Result first = detector.Observe("MDD", 0.4);
  EXPECT_EQ(first.baseline, 0.4);
  EXPECT_EQ(first.delta, 0.0);
  const DriftDetector::Result second = detector.Observe("MDD", 0.5);
  EXPECT_EQ(second.baseline, 0.4);
  EXPECT_NEAR(second.delta, 0.1, 1e-15);
}

// The detector normalizes residuals by the baseline magnitude, so the same
// options catch a 3x shift on a measure living at 1e-3 as readily as at 1e3.
TEST(DriftDetectorTest, NormalizationMakesScalesComparable) {
  for (const double scale : {1e-3, 1.0, 1e3}) {
    DriftDetector detector;
    for (int i = 0; i < 10; ++i) detector.Observe("X", scale);
    for (int i = 0; i < 50; ++i) detector.Observe("X", 3.0 * scale);
    EXPECT_GT(detector.alarms_total(), 0) << scale;
  }
}

// End to end: a stream whose statistics shift mid-way raises a drift alarm
// through the evaluator; a stationary stream does not.
TEST(DriftDetectorTest, EvaluatorAlarmsOnStreamRegimeShift) {
  const Dataset reference = SineDataset(6, /*seed=*/3);
  StreamEvalOptions options;
  options.window = 4;
  auto eval = StreamEvaluator::Create(reference, options);
  ASSERT_TRUE(eval.ok());
  // 10 statistically identical windows settle the baseline: every window holds
  // the same four series, so the per-window measure values do not move.
  const std::vector<Matrix> quiet = StreamSeries(4, /*seed=*/5);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(eval.value()->Update(quiet).ok());
  }
  EXPECT_EQ(eval.value()->alarms_total(), 0);
  // ...then the regime shifts: same generator family, amplitude blown up 50x.
  std::vector<Matrix> shifted = StreamSeries(60, /*seed=*/6);
  for (Matrix& series : shifted) series *= 50.0;
  ASSERT_TRUE(eval.value()->Update(shifted).ok());
  EXPECT_GT(eval.value()->alarms_total(), 0);
}

// ---- The feature-Gaussian (sampled tier). ----

TEST(GaussianStatsTest, ChanMergeMatchesSequentialAccumulation) {
  Rng rng(9);
  const int64_t d = 4;
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    std::vector<double> x(d);
    for (auto& v : x) v = rng.Normal();
    points.push_back(std::move(x));
  }
  GaussianStats all(d), left(d), right(d);
  for (size_t i = 0; i < points.size(); ++i) {
    all.Add(points[i]);
    (i < 25 ? left : right).Add(points[i]);
  }
  left.Merge(right);
  ASSERT_EQ(left.n, all.n);
  for (int64_t j = 0; j < d; ++j) {
    EXPECT_NEAR(left.mean[j], all.mean[j], 1e-12);
  }
  const Matrix cov_merged = left.Covariance();
  const Matrix cov_all = all.Covariance();
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      EXPECT_NEAR(cov_merged(i, j), cov_all(i, j), 1e-12);
    }
  }
}

TEST(GaussianStatsTest, FrechetOfIdenticalMomentsIsZero) {
  Rng rng(11);
  GaussianStats stats(3);
  for (int i = 0; i < 40; ++i) {
    stats.Add({rng.Normal(), rng.Normal() * 2.0, rng.Normal() - 1.0});
  }
  const auto fid = FrechetFromMoments(stats, stats);
  ASSERT_TRUE(fid.ok()) << fid.status().ToString();
  EXPECT_NEAR(fid.value(), 0.0, 1e-6);
}

TEST(GaussianStatsTest, FrechetRequiresTwoObservations) {
  GaussianStats a(2), b(2);
  a.Add({0.0, 0.0});
  a.Add({1.0, 1.0});
  b.Add({0.0, 0.0});
  EXPECT_FALSE(FrechetFromMoments(a, b).ok());
}

// FGD separates a matched stream from a mismatched one: series drawn from the
// reference family score lower than series with shifted statistics.
TEST(GaussianStatsTest, FeatureGaussianSeparatesMatchedFromShifted) {
  const Dataset reference = SineDataset(24, /*seed=*/3);
  const auto matched =
      RunStream(reference, StreamSeries(24, /*seed=*/41), /*window=*/24, 6);
  std::vector<Matrix> shifted = StreamSeries(24, /*seed=*/41);
  for (Matrix& series : shifted) series *= 10.0;
  StreamEvalOptions options;
  options.window = 24;
  auto eval = StreamEvaluator::Create(reference, options);
  ASSERT_TRUE(eval.ok());
  ASSERT_TRUE(eval.value()->Update(shifted).ok());
  const auto off = eval.value()->SnapshotNow();
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(matched.count("FGD"));
  ASSERT_TRUE(off.value().count("FGD"));
  EXPECT_LT(matched.at("FGD"), off.value().at("FGD"));
}

}  // namespace
}  // namespace tsg::streameval
