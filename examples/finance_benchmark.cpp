// Domain example: benchmarking TSG methods for financial data augmentation.
// The intro scenario: a quant team wants synthetic daily price windows to augment a
// small Stock history. This example compares a GAN (RGAN), a flow (FourierFlow — the
// paper's recommendation when autocorrelation matters, e.g. for forecasting), and a
// VAE (TimeVAE — the recommended starting point), then ranks them with the same
// statistics TSGBench uses (within-block ranks across measures).

#include <cstdio>

#include "core/harness.h"
#include "core/preprocess.h"
#include "core/ranking.h"
#include "data/simulators.h"
#include "io/table.h"
#include "methods/factory.h"
#include "stats/rank_tests.h"

int main() {
  tsg::data::SimulatorOptions sim;
  sim.scale = 0.05;
  const auto raw = tsg::data::Simulate(tsg::data::DatasetId::kStock, sim);
  const auto data = tsg::core::Preprocess(raw, tsg::core::PreprocessOptions());
  std::printf("Stock windows: %lld train / %lld test (l=%lld, N=%lld)\n\n",
              static_cast<long long>(data.train.num_samples()),
              static_cast<long long>(data.test.num_samples()),
              static_cast<long long>(data.train.seq_len()),
              static_cast<long long>(data.train.num_features()));

  const std::vector<std::string> contenders = {"RGAN", "FourierFlow", "TimeVAE"};

  tsg::core::HarnessOptions harness_options;
  harness_options.fit.epoch_scale = 0.5;
  harness_options.stochastic_repeats = 3;
  harness_options.embedder.epochs = 8;
  tsg::core::Harness harness(harness_options);

  std::vector<std::string> measures;
  std::vector<std::vector<double>> scores_by_method;
  tsg::io::Table table({"Method", "Fit(s)", "DS", "PS", "C-FID", "MDD", "ACD", "SD",
                        "KD", "ED", "DTW"});

  for (const std::string& name : contenders) {
    auto method = tsg::methods::CreateMethod(name);
    TSG_CHECK(method.ok());
    const auto run = harness.RunMethod(*method.value(), data.train, data.test);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   run.status().ToString().c_str());
      continue;
    }
    const auto& result = run.value();
    std::vector<std::string> row = {name, tsg::io::Table::Num(result.fit_seconds, 1)};
    std::vector<double> values;
    measures.clear();
    for (const auto& [measure, summary] : result.scores) {
      row.push_back(tsg::io::Table::Num(summary.mean, 3));
      values.push_back(summary.mean);
      measures.push_back(measure);
    }
    scores_by_method.push_back(values);
    table.AddRow(row);
  }
  table.Print();

  // Rank per measure (1 = best), then average — the Figure 1 computation in small.
  std::printf("\nAverage rank across measures (1 = best):\n");
  std::vector<double> avg_rank(contenders.size(), 0.0);
  for (size_t m = 0; m < measures.size(); ++m) {
    std::vector<double> column;
    for (const auto& values : scores_by_method) column.push_back(values[m]);
    const auto ranks = tsg::stats::RankWithTies(column);
    for (size_t i = 0; i < contenders.size(); ++i) avg_rank[i] += ranks[i];
  }
  for (size_t i = 0; i < contenders.size(); ++i) {
    std::printf("  %-12s %.2f\n", contenders[i].c_str(),
                avg_rank[i] / static_cast<double>(measures.size()));
  }
  std::printf("\nPer the paper's recommendations: start from the VAE family, reach\n"
              "for FourierFlow when ACD (autocorrelation fidelity) drives the use\n"
              "case, and expect vanilla recurrent GANs to trail.\n");
  return 0;
}
