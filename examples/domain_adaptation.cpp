// Domain example: the §4.3 generalization test on factory machinery (Example 4.1).
// A TSG model trained on Boiler 1 must synthesize sensor readings for the newly
// installed Boiler 2, from which only a brief history exists. The three DA scenarios
// are compared for one efficient method (LS4) and the TimeGAN baseline.

#include <cstdio>

#include "core/da.h"
#include "core/harness.h"
#include "core/preprocess.h"
#include "data/simulators.h"
#include "io/table.h"
#include "methods/factory.h"

namespace {

tsg::core::Dataset PrepareDomain(int domain_index) {
  tsg::data::SimulatorOptions sim;
  sim.scale = 0.0016;  // ~130 Boiler windows (keeps the example under a minute).
  sim.domain_index = domain_index;
  const auto raw = tsg::data::Simulate(tsg::data::DatasetId::kBoiler, sim);
  auto processed = tsg::core::Preprocess(raw, tsg::core::PreprocessOptions());
  auto all = processed.train;
  all.set_name("Boiler/" +
               tsg::data::DomainLabels(tsg::data::DatasetId::kBoiler)
                   [static_cast<size_t>(domain_index)]);
  return all;
}

}  // namespace

int main() {
  // Source machine: Boiler 1. Target machine: Boiler 2 with a short history.
  tsg::core::DaTask task;
  task.source_train = PrepareDomain(0);
  const tsg::core::Dataset target_all = PrepareDomain(1);
  const int64_t his = std::max<int64_t>(4, target_all.num_samples() / 10);
  task.target_his = target_all.Head(his);
  std::vector<int64_t> gt_idx;
  for (int64_t i = his; i < target_all.num_samples(); ++i) gt_idx.push_back(i);
  task.target_gt = target_all.Select(gt_idx);
  task.source_label = "Boiler1";
  task.target_label = "Boiler2";

  std::printf("Source %s: %lld windows; target history: %lld; ground truth: %lld\n\n",
              task.source_label.c_str(),
              static_cast<long long>(task.source_train.num_samples()),
              static_cast<long long>(task.target_his.num_samples()),
              static_cast<long long>(task.target_gt.num_samples()));

  tsg::core::HarnessOptions harness_options;
  harness_options.fit.epoch_scale = 0.15;
  harness_options.stochastic_repeats = 2;
  harness_options.embedder.epochs = 4;
  harness_options.max_eval_samples = 64;
  tsg::core::Harness harness(harness_options);

  tsg::io::Table table({"Method", "Scenario", "Train windows", "C-FID", "MDD", "ED"});
  for (const std::string& name : {"TimeGAN", "LS4"}) {
    for (auto scenario : {tsg::core::DaScenario::kSingle,
                          tsg::core::DaScenario::kCross,
                          tsg::core::DaScenario::kReference}) {
      auto method = tsg::methods::CreateMethod(name);
      TSG_CHECK(method.ok());
      const tsg::core::Dataset train_set =
          tsg::core::BuildDaTrainingSet(task, scenario);
      TSG_CHECK(method.value()->Fit(train_set, harness_options.fit).ok());

      tsg::Rng rng(11);
      const int64_t count = std::min<int64_t>(64, task.target_gt.num_samples());
      tsg::core::Dataset generated(name, method.value()->Generate(count, rng));
      const auto scores = harness.EvaluateGenerated(
          task.target_gt.Head(count), task.target_gt, generated, "boiler_gt");
      if (!scores.ok()) {
        std::fprintf(stderr, "evaluation failed: %s\n",
                     scores.status().ToString().c_str());
        continue;
      }

      auto lookup = [&scores](const std::string& measure) {
        for (const auto& [n2, summary] : scores.value()) {
          if (n2 == measure) return summary.mean;
        }
        return 0.0;
      };
      table.AddRow({name, tsg::core::DaScenarioName(scenario),
                    std::to_string(train_set.num_samples()),
                    tsg::io::Table::Num(lookup("C-FID"), 3),
                    tsg::io::Table::Num(lookup("MDD"), 3),
                    tsg::io::Table::Num(lookup("ED"), 3)});
    }
  }
  table.Print();
  std::printf("\nLower is better. In the paper, fast-converging methods (LS4,\n"
              "RTSGAN) excel at single DA while TimeGAN adapts poorly across all\n"
              "three scenarios.\n");
  return 0;
}
