// Quickstart: the full TSGBench loop in ~60 lines.
//   1. Get a dataset (here: the simulated Stock dataset, D2).
//   2. Run the standardized preprocessing pipeline (§4.1).
//   3. Fit a TSG method (TimeVAE — the paper's recommended starting point).
//   4. Generate synthetic series.
//   5. Evaluate with the measure suite (§4.2).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "core/harness.h"
#include "core/preprocess.h"
#include "data/simulators.h"
#include "io/table.h"
#include "methods/factory.h"

int main() {
  // 1. Dataset: simulated daily stock data, (R, l=24, N=6).
  tsg::data::SimulatorOptions sim;
  sim.scale = 0.05;
  const tsg::data::RawSeries raw =
      tsg::data::Simulate(tsg::data::DatasetId::kStock, sim);
  std::printf("Loaded %s: L=%lld steps, N=%lld series\n", raw.name.c_str(),
              static_cast<long long>(raw.values.rows()),
              static_cast<long long>(raw.values.cols()));

  // 2. Preprocess: window (stride 1), shuffle, 9:1 split, normalize to [0, 1].
  const tsg::core::Preprocessed data =
      tsg::core::Preprocess(raw, tsg::core::PreprocessOptions());
  std::printf("Preprocessed: %lld train / %lld test windows of shape (%lld x %lld)\n",
              static_cast<long long>(data.train.num_samples()),
              static_cast<long long>(data.test.num_samples()),
              static_cast<long long>(data.train.seq_len()),
              static_cast<long long>(data.train.num_features()));

  // 3. Fit TimeVAE.
  auto method = tsg::methods::CreateMethod("TimeVAE");
  TSG_CHECK(method.ok());
  tsg::core::FitOptions fit;
  fit.epoch_scale = 0.5;
  const tsg::Status status = method.value()->Fit(data.train, fit);
  TSG_CHECK(status.ok()) << status.ToString();
  std::printf("Fitted %s\n", method.value()->name().c_str());

  // 4. Generate as many synthetic windows as the evaluation needs.
  tsg::Rng rng(7);
  const int64_t count = std::min<int64_t>(128, data.train.num_samples());
  tsg::core::Dataset generated("TimeVAE@Stock",
                               method.value()->Generate(count, rng));
  std::printf("Generated %lld synthetic windows\n", static_cast<long long>(count));

  // 5. Evaluate with the twelve-measure suite (scalar measures; lower = better).
  tsg::core::HarnessOptions harness_options;
  harness_options.stochastic_repeats = 3;
  harness_options.embedder.epochs = 8;
  tsg::core::Harness harness(harness_options);
  const auto scores = harness.EvaluateGenerated(data.train.Head(count), data.test,
                                                generated, "stock");
  if (!scores.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }

  tsg::io::Table table({"Measure", "Score (mean +- std)"});
  for (const auto& [name, summary] : scores.value()) {
    table.AddRow({name, tsg::io::Table::MeanStd(summary.mean, summary.std)});
  }
  table.Print();
  return 0;
}
