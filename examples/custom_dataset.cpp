// Domain example: plugging your own raw time series into the benchmark.
// A wearable-sensor team has one long multivariate recording (here synthesized) and
// wants to (a) let the ACF-based rule pick the window length, (b) train a method,
// and (c) export t-SNE / density-plot data to inspect the result — the Figure 6
// workflow on user data. Also demonstrates CSV round-tripping via tsg::io.

#include <cmath>
#include <cstdio>

#include "core/preprocess.h"
#include "core/visualize.h"
#include "data/simulators.h"
#include "io/csv.h"
#include "methods/factory.h"

int main() {
  // --- Your raw data: a long (L x N) matrix. Here: a 3-channel gait-like signal
  // with a 32-step period, as if loaded from a CSV export of a wearable.
  const int64_t length = 2000, channels = 3;
  tsg::linalg::Matrix recording(length, channels);
  tsg::Rng rng(123);
  for (int64_t t = 0; t < length; ++t) {
    const double cycle = 2.0 * M_PI * static_cast<double>(t) / 32.0;
    recording(t, 0) = std::sin(cycle) + 0.1 * rng.Normal();
    recording(t, 1) = 0.6 * std::sin(2.0 * cycle + 0.7) + 0.1 * rng.Normal();
    recording(t, 2) = 9.8 + 0.4 * std::cos(cycle) + 0.05 * rng.Normal();
  }

  // Round-trip through CSV exactly as a user loading an export would.
  const std::string csv_path = "custom_recording.csv";
  TSG_CHECK(tsg::io::WriteCsv(csv_path, {"acc_x", "acc_y", "acc_z"}, recording).ok());
  auto loaded = tsg::io::ReadCsv(csv_path, /*skip_header=*/true);
  TSG_CHECK(loaded.ok()) << loaded.status().ToString();

  tsg::data::RawSeries raw;
  raw.values = loaded.value();
  raw.name = "WearableGait";
  raw.domain = "Medical";
  raw.window_length = 24;  // Ignored: we let the ACF rule decide below.

  // --- Preprocess with the ACF window rule (window_length = -1).
  tsg::core::PreprocessOptions options;
  options.window_length = -1;
  const tsg::core::Preprocessed data = tsg::core::Preprocess(raw, options);
  std::printf("ACF selected window length l=%lld (true period: 32)\n",
              static_cast<long long>(data.window_length));
  std::printf("Train/test: %lld / %lld windows\n",
              static_cast<long long>(data.train.num_samples()),
              static_cast<long long>(data.test.num_samples()));

  // --- Fit the paper's recommended starter and generate.
  auto method = tsg::methods::CreateMethod("LS4");
  TSG_CHECK(method.ok());
  tsg::core::FitOptions fit;
  fit.epoch_scale = 0.5;
  TSG_CHECK(method.value()->Fit(data.train, fit).ok());
  tsg::Rng gen_rng(7);
  tsg::core::Dataset generated("LS4@WearableGait",
                               method.value()->Generate(100, gen_rng));

  // --- Export the Figure 6 style visualization data.
  tsg::core::VisualizeOptions vis_options;
  vis_options.max_samples_per_set = 100;
  vis_options.tsne.iterations = 200;
  const auto vis = tsg::core::Visualize(data.train, generated, vis_options);
  TSG_CHECK(tsg::core::WriteVisualization("custom_dataset", vis).ok());

  std::printf("t-SNE overlap: %.3f (0.5 = clouds indistinguishable)\n",
              vis.tsne_overlap);
  std::printf("KDE L1 gap:    %.3f (0 = identical value distributions)\n",
              vis.kde_l1);
  std::printf("Wrote custom_dataset_tsne.csv and custom_dataset_density.csv;\n"
              "plot them with your tool of choice.\n");
  return 0;
}
