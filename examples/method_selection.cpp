// Domain example: the paper's §6.5 workflow for a *new* dataset.
//   1. Profile the dataset's statistics (size, dimensionality, periodicity).
//   2. Ask the recommendation engine which methods/measures to prioritize.
//   3. Auto-tune the top recommendation with the successive-halving tuner
//      (the paper's "automatic tuning" future-work item).
//   4. Persist the trained parameters for reuse.

#include <cstdio>

#include "core/measures.h"
#include "core/preprocess.h"
#include "core/recommend.h"
#include "core/tune.h"
#include "data/simulators.h"
#include "methods/factory.h"
#include "methods/ls4.h"

int main() {
  // The "new" dataset: simulated EEG (l=128, N=14 — high-dimensional, periodic).
  tsg::data::SimulatorOptions sim;
  sim.scale = 0.012;
  const auto raw = tsg::data::Simulate(tsg::data::DatasetId::kEeg, sim);
  const auto data = tsg::core::Preprocess(raw, tsg::core::PreprocessOptions());

  // 1. Profile.
  const auto profile = tsg::core::ProfileDataset(data.train);
  std::printf("Profile: R=%lld l=%lld N=%lld mean|ACF|=%.2f small=%d highdim=%d\n\n",
              static_cast<long long>(profile.num_samples),
              static_cast<long long>(profile.seq_len),
              static_cast<long long>(profile.num_features), profile.mean_abs_acf,
              profile.small_data, profile.high_dimensional);

  // 2. Recommend for a forecasting-oriented application.
  const auto rec =
      tsg::core::Recommend(profile, tsg::core::ApplicationGoal::kForecasting);
  std::printf("Recommended methods (in order):");
  for (const auto& m : rec.methods) std::printf(" %s", m.c_str());
  std::printf("\nRecommended measures:");
  for (const auto& m : rec.measures) std::printf(" %s", m.c_str());
  std::printf("\nRationale:\n");
  for (const auto& line : rec.rationale) std::printf("  - %s\n", line.c_str());

  // 3. Auto-tune the first recommendation on an MDD objective.
  const std::string chosen = rec.methods[0];
  std::printf("\nTuning %s with successive halving...\n", chosen.c_str());
  auto factory = [&chosen] {
    return std::move(tsg::methods::CreateMethod(chosen).value());
  };
  auto objective = [](const tsg::core::Dataset& reference,
                      const tsg::core::Dataset& generated) {
    tsg::core::MeasureContext ctx;
    ctx.real = &reference;
    ctx.generated = &generated;
    return tsg::core::MarginalDistributionDifference().Evaluate(ctx).value();
  };
  tsg::core::TuneOptions tune_options;
  tune_options.rungs = 2;
  tune_options.initial_epoch_scale = 0.05;
  const auto tuned =
      tsg::core::TuneMethod(factory, tsg::core::DefaultCandidates(42), data.train,
                            data.test, objective, tune_options);
  for (const auto& trial : tuned.trials) std::printf("  %s\n", trial.c_str());
  std::printf("Best: %s (MDD objective %.4f)\n", tuned.best.label.c_str(),
              tuned.best_score);

  // 4. Refit the winner with a fuller budget and persist it.
  auto final_method = tsg::methods::CreateMethod(chosen).value();
  tsg::core::FitOptions final_fit = tuned.best.options;
  final_fit.epoch_scale = 0.4;
  TSG_CHECK(final_method->Fit(data.train, final_fit).ok());
  std::printf("\nRefit %s at full budget; parameters can now be saved via\n"
              "tsg::nn::SaveParameters for deployment (see nn/serialize.h).\n",
              chosen.c_str());
  return 0;
}
