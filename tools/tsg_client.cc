// tsg_client: command-line client for the tsgd daemon. Opens one session on
// the daemon's Unix-domain socket (or 127.0.0.1:<port>), sends protocol lines
// built through serve::EncodeRequest, and prints each response line to stdout.
//
// The command set, --help text, and README protocol table all come from
// serve::ClientVerbs() — one table shared with the wire parser — so this file
// never lists verbs by hand and cannot drift from the protocol. Run
// `tsg_client --help` for the full synopsis.
//
// --wait on a submit sends {"cmd":"result","wait":true} for the new job and
// blocks until the daemon answers with the terminal state. Exit status: 0 when
// every response has "ok":true, 1 on a failed response or dead daemon, 2 on
// usage errors.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "io/json_parse.h"
#include "serve/protocol.h"

namespace {

using tsg::bench::ConsumeFlag;
using tsg::bench::ConsumeFlagValue;

int UsageError(const char* message) {
  std::fprintf(stderr, "%s\n%s", message, tsg::serve::ClientUsage().c_str());
  return 2;
}

int Connect(const std::string& socket_path, int port) {
  if (!socket_path.empty()) {
    sockaddr_un addr{};
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      std::fprintf(stderr, "socket path too long: %s\n", socket_path.c_str());
      return -1;
    }
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      std::fprintf(stderr, "connect(%s): %s\n", socket_path.c_str(),
                   std::strerror(errno));
      close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "connect(127.0.0.1:%d): %s\n", port,
                 std::strerror(errno));
    close(fd);
    return -1;
  }
  return fd;
}

bool SendLine(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = send(fd, framed.data() + sent, framed.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "send: %s\n", std::strerror(errno));
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Blocks until one full response line arrives (the daemon always answers in
/// order within a session). False on EOF/error.
bool ReadLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) std::fprintf(stderr, "recv: %s\n", std::strerror(errno));
    return false;
  }
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Prints the response and reports whether it carried "ok":true.
bool PrintResponse(const std::string& line) {
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
  const auto parsed = tsg::io::JsonValue::Parse(line);
  return parsed.ok() && parsed.value().GetBool("ok", false);
}

}  // namespace

int main(int argc, char** argv) {
  if (ConsumeFlag(&argc, argv, "help")) {
    std::fputs(tsg::serve::ClientUsage().c_str(), stdout);
    return 0;
  }
  std::string socket_path;
  std::string port_text;
  std::string value;
  ConsumeFlagValue(&argc, argv, "socket", &socket_path);
  ConsumeFlagValue(&argc, argv, "port", &port_text);
  const bool wait = ConsumeFlag(&argc, argv, "wait");

  tsg::serve::Request request;
  std::string flag_method, flag_dataset, flag_tenant;
  int64_t flag_job = -1;
  ConsumeFlagValue(&argc, argv, "method", &flag_method);
  ConsumeFlagValue(&argc, argv, "dataset", &flag_dataset);
  if (ConsumeFlagValue(&argc, argv, "tenant", &flag_tenant)) {
    request.spec.tenant = flag_tenant;
  }
  if (ConsumeFlagValue(&argc, argv, "priority", &value)) {
    request.spec.priority = std::atoll(value.c_str());
  }
  if (ConsumeFlagValue(&argc, argv, "count", &value)) {
    request.spec.count = std::atoll(value.c_str());
  }
  if (ConsumeFlagValue(&argc, argv, "gen_seed", &value)) {
    request.spec.gen_seed = static_cast<uint64_t>(std::atoll(value.c_str()));
  }
  if (ConsumeFlagValue(&argc, argv, "window", &value)) {
    request.spec.window = std::atoll(value.c_str());
  }
  if (ConsumeFlagValue(&argc, argv, "chunk", &value)) {
    request.spec.chunk = std::atoll(value.c_str());
  }
  if (ConsumeFlagValue(&argc, argv, "methods", &value)) {
    request.spec.methods = SplitCsv(value);
  }
  if (ConsumeFlagValue(&argc, argv, "datasets", &value)) {
    request.spec.datasets = SplitCsv(value);
  }
  if (ConsumeFlagValue(&argc, argv, "job", &value)) {
    flag_job = std::atoll(value.c_str());
  }
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, tsg::serve::ClientUsage()))
    return 2;
  if (argc != 2) return UsageError("expected exactly one command");
  if (socket_path.empty() == port_text.empty()) {
    return UsageError("pass exactly one of --socket / --port");
  }

  // Dispatch off the shared verb table: submit verbs are JobKind wire tokens,
  // plain verbs are Cmd wire tokens — so an unlisted command cannot exist.
  const std::string command = argv[1];
  const tsg::serve::VerbInfo* verb = nullptr;
  for (const tsg::serve::VerbInfo& v : tsg::serve::ClientVerbs()) {
    if (command == v.verb) {
      verb = &v;
      break;
    }
  }
  if (verb == nullptr) return UsageError("unknown command");

  bool is_submit = verb->is_submit;
  if (is_submit) {
    request.cmd = tsg::serve::Request::Cmd::kSubmit;
    const auto kind = tsg::serve::ParseJobKind(command);
    request.spec.kind = kind.value();
    request.spec.method = flag_method;
    request.spec.dataset = flag_dataset;
    if (command != "grid" && (flag_method.empty() || flag_dataset.empty())) {
      return UsageError("--method and --dataset are required");
    }
    if ((command == "generate" || command == "stream_eval") &&
        request.spec.count <= 0) {
      return UsageError("--count must be a positive integer");
    }
    if (command == "stream_eval" &&
        (request.spec.window <= 0 || request.spec.chunk <= 0)) {
      return UsageError("--window and --chunk must be positive integers");
    }
  } else if (command == "status") {
    request.cmd = tsg::serve::Request::Cmd::kStatus;
    request.job = flag_job;
  } else if (command == "result") {
    if (flag_job < 0) return UsageError("result requires --job");
    request.cmd = tsg::serve::Request::Cmd::kResult;
    request.job = flag_job;
    request.wait = wait;
  } else if (command == "cancel") {
    if (flag_job < 0) return UsageError("cancel requires --job");
    request.cmd = tsg::serve::Request::Cmd::kCancel;
    request.job = flag_job;
  } else if (command == "metrics") {
    request.cmd = tsg::serve::Request::Cmd::kMetrics;
  } else if (command == "ping") {
    request.cmd = tsg::serve::Request::Cmd::kPing;
  } else {
    request.cmd = tsg::serve::Request::Cmd::kShutdown;
  }

  const int fd = Connect(socket_path, std::atoi(port_text.c_str()));
  if (fd < 0) return 1;

  std::string buffer;
  std::string line;
  bool ok = true;
  if (!SendLine(fd, tsg::serve::EncodeRequest(request)) ||
      !ReadLine(fd, &buffer, &line)) {
    close(fd);
    return 1;
  }
  ok = PrintResponse(line) && ok;

  if (ok && is_submit && wait) {
    // Follow the job to its terminal state over the same session.
    const auto submitted = tsg::io::JsonValue::Parse(line);
    const int64_t job_id =
        submitted.ok() ? submitted.value().GetInt("job", -1) : -1;
    if (job_id < 0) {
      close(fd);
      return 1;
    }
    tsg::serve::Request follow;
    follow.cmd = tsg::serve::Request::Cmd::kResult;
    follow.job = job_id;
    follow.wait = true;
    if (!SendLine(fd, tsg::serve::EncodeRequest(follow)) ||
        !ReadLine(fd, &buffer, &line)) {
      close(fd);
      return 1;
    }
    ok = PrintResponse(line) && ok;
  }

  close(fd);
  return ok ? 0 : 1;
}
