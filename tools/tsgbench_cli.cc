// tsgbench — command-line driver for the benchmark library.
//
// Subcommands:
//   list                         list methods and datasets
//   run       --method M --dataset D [--epoch-scale S] [--repeats K] [--seed N]
//                                fit one method on one dataset and print the
//                                measure suite (one Figure 5 cell)
//   evaluate  --real a.csv --generated b.csv --seq-len L
//                                score a generated set stored as CSV against a
//                                real set (windows stacked row-wise, l rows per
//                                window, N columns)
//   recommend --dataset D [--goal general|classification|forecasting|stats|clustering]
//                                run the §6.5 recommendation engine
//   profile   --dataset D        print a dataset's statistical profile
//
// All numeric output is deterministic for a fixed --seed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/preprocess.h"
#include "core/recommend.h"
#include "data/simulators.h"
#include "io/csv.h"
#include "io/table.h"
#include "methods/factory.h"

namespace {

using tsg::core::Dataset;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoll(it->second.c_str());
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args.flags[key] = argv[i + 1];
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: tsgbench_cli <command> [flags]\n"
      "  list\n"
      "  run       --method M --dataset D [--epoch-scale S] [--repeats K]\n"
      "            [--seed N] [--eval-samples E]\n"
      "  evaluate  --real a.csv --generated b.csv --seq-len L [--repeats K]\n"
      "  recommend --dataset D [--goal general|classification|forecasting|stats|\n"
      "            clustering]\n"
      "  profile   --dataset D\n");
  return 2;
}

bool FindDataset(const std::string& name, tsg::data::DatasetId* id) {
  for (tsg::data::DatasetId candidate : tsg::data::AllDatasets()) {
    if (name == tsg::data::DatasetName(candidate)) {
      *id = candidate;
      return true;
    }
  }
  return false;
}

tsg::core::Preprocessed Prepare(tsg::data::DatasetId id, uint64_t seed) {
  tsg::data::SimulatorOptions sim;
  sim.scale = 0.02;
  sim.seed = seed;
  const tsg::data::RawSeries raw = tsg::data::Simulate(id, sim);
  tsg::core::PreprocessOptions pre;
  pre.shuffle_seed = seed ^ 0x5481;
  return tsg::core::Preprocess(raw, pre);
}

int CmdList() {
  std::printf("Methods:\n");
  for (const auto& m : tsg::methods::AllMethodNames()) std::printf("  %s\n",
                                                                   m.c_str());
  std::printf("Datasets:\n");
  for (tsg::data::DatasetId id : tsg::data::AllDatasets()) {
    const auto stats = tsg::data::GetPaperStats(id);
    std::printf("  %-12s (R=%lld, l=%lld, N=%lld, %s)\n", tsg::data::DatasetName(id),
                static_cast<long long>(stats.r), static_cast<long long>(stats.l),
                static_cast<long long>(stats.n), stats.domain);
  }
  return 0;
}

int CmdRun(const Args& args) {
  const std::string method_name = args.Get("method");
  tsg::data::DatasetId id;
  if (method_name.empty() || !FindDataset(args.Get("dataset"), &id)) {
    return Usage();
  }
  auto method = tsg::methods::CreateMethod(method_name);
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const auto data = Prepare(id, seed);

  tsg::core::HarnessOptions options;
  options.fit.epoch_scale = args.GetDouble("epoch-scale", 0.3);
  options.fit.seed = seed;
  options.stochastic_repeats = static_cast<int>(args.GetInt("repeats", 3));
  options.max_eval_samples = args.GetInt("eval-samples", 96);
  options.embedder.epochs = 8;
  options.seed = seed;
  tsg::core::Harness harness(options);

  const auto run = harness.RunMethod(*method.value(), data.train, data.test);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  const auto& result = run.value();
  std::printf("%s on %s: fit %.1fs (%s)\n", result.method.c_str(),
              result.dataset.c_str(), result.fit_seconds,
              tsg::core::Harness::TrainingTimeBucket(result.fit_seconds));
  tsg::io::Table table({"Measure", "Score"});
  for (const auto& [measure, summary] : result.scores) {
    table.AddRow({measure, tsg::io::Table::MeanStd(summary.mean, summary.std)});
  }
  table.Print();
  return 0;
}

/// Loads stacked windows (l rows per window) from a CSV with N columns.
tsg::StatusOr<Dataset> LoadWindows(const std::string& path, int64_t seq_len,
                                   const std::string& name) {
  auto matrix = tsg::io::ReadCsv(path, /*skip_header=*/false);
  if (!matrix.ok()) return matrix.status();
  const auto& m = matrix.value();
  if (seq_len <= 0 || m.rows() % seq_len != 0) {
    return tsg::Status::InvalidArgument("row count is not a multiple of --seq-len");
  }
  Dataset ds;
  ds.set_name(name);
  for (int64_t start = 0; start + seq_len <= m.rows(); start += seq_len) {
    ds.Add(m.Block(start, 0, seq_len, m.cols()));
  }
  return ds;
}

int CmdEvaluate(const Args& args) {
  const int64_t seq_len = args.GetInt("seq-len", 0);
  auto real = LoadWindows(args.Get("real"), seq_len, "real");
  auto generated = LoadWindows(args.Get("generated"), seq_len, "generated");
  if (!real.ok() || !generated.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!real.ok() ? real.status() : generated.status()).ToString().c_str());
    return 1;
  }
  tsg::core::HarnessOptions options;
  options.stochastic_repeats = static_cast<int>(args.GetInt("repeats", 3));
  options.embedder.epochs = 8;
  tsg::core::Harness harness(options);
  const auto scores = harness.EvaluateGenerated(real.value(), real.value(),
                                                generated.value(), "cli");
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }
  tsg::io::Table table({"Measure", "Score"});
  for (const auto& [measure, summary] : scores.value()) {
    table.AddRow({measure, tsg::io::Table::MeanStd(summary.mean, summary.std)});
  }
  table.Print();
  return 0;
}

int CmdRecommend(const Args& args) {
  tsg::data::DatasetId id;
  if (!FindDataset(args.Get("dataset"), &id)) return Usage();
  const auto data = Prepare(id, 42);
  const auto profile = tsg::core::ProfileDataset(data.train);

  tsg::core::ApplicationGoal goal = tsg::core::ApplicationGoal::kGeneral;
  const std::string goal_name = args.Get("goal", "general");
  if (goal_name == "classification") {
    goal = tsg::core::ApplicationGoal::kClassification;
  } else if (goal_name == "forecasting") {
    goal = tsg::core::ApplicationGoal::kForecasting;
  } else if (goal_name == "stats") {
    goal = tsg::core::ApplicationGoal::kStatisticalMatch;
  } else if (goal_name == "clustering") {
    goal = tsg::core::ApplicationGoal::kClustering;
  }

  const auto rec = tsg::core::Recommend(profile, goal);
  std::printf("Methods:");
  for (const auto& m : rec.methods) std::printf(" %s", m.c_str());
  std::printf("\nMeasures:");
  for (const auto& m : rec.measures) std::printf(" %s", m.c_str());
  std::printf("\nRationale:\n");
  for (const auto& line : rec.rationale) std::printf("  - %s\n", line.c_str());
  return 0;
}

int CmdProfile(const Args& args) {
  tsg::data::DatasetId id;
  if (!FindDataset(args.Get("dataset"), &id)) return Usage();
  const auto data = Prepare(id, 42);
  const auto profile = tsg::core::ProfileDataset(data.train);
  std::printf("dataset=%s R=%lld l=%lld N=%lld mean|ACF|=%.3f small_data=%d "
              "high_dimensional=%d long_sequence=%d\n",
              tsg::data::DatasetName(id),
              static_cast<long long>(profile.num_samples),
              static_cast<long long>(profile.seq_len),
              static_cast<long long>(profile.num_features), profile.mean_abs_acf,
              profile.small_data, profile.high_dimensional, profile.long_sequence);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (args.command == "list") return CmdList();
  if (args.command == "run") return CmdRun(args);
  if (args.command == "evaluate") return CmdEvaluate(args);
  if (args.command == "recommend") return CmdRecommend(args);
  if (args.command == "profile") return CmdProfile(args);
  return Usage();
}
