// tsgd: the benchmark-as-a-service daemon (DESIGN.md §11). Listens on a
// Unix-domain socket (and optionally 127.0.0.1:<port>) speaking the
// newline-delimited JSON protocol in src/serve/protocol.h, runs submitted
// fit/generate/evaluate/grid jobs on the shared thread pool, and serves warm
// generation from the store::ServingCache. Results are byte-identical to the
// batch binaries over the same TSGBENCH_* configuration; grid jobs checkpoint
// per cell, so a killed daemon resumes exactly where it stopped.
//
// Environment: TSGBENCH_SCALE / TSGBENCH_SEED / TSGBENCH_OUT /
// TSGBENCH_STORE_DIR (defaults to <out>/model_store when unset) /
// TSGBENCH_SERVING_CACHE_BYTES / TSG_THREADS.
//
// Flags: --socket=<path> (required), --tcp_port=<p>, --idle_timeout=<s>,
// --max_inflight=<n>, --max_inflight_per_tenant=<n>, --max_queued=<n>,
// --metrics_out=<path>.
//
// SIGTERM/SIGINT drain: running grid jobs stop at the next cell checkpoint,
// queued jobs fail as "drained", waiters are answered, then the process exits
// 0. SIGKILL is also safe — completed cells are already on disk.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "serve/bench_runner.h"
#include "serve/server.h"

namespace {

tsg::serve::Server* g_server = nullptr;

void HandleStopSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  tsg::serve::ServerOptions options;
  std::string value;
  tsg::bench::ConsumeFlagValue(&argc, argv, "socket", &options.socket_path);
  if (tsg::bench::ConsumeFlagValue(&argc, argv, "tcp_port", &value)) {
    options.tcp_port = std::atoi(value.c_str());
  }
  if (tsg::bench::ConsumeFlagValue(&argc, argv, "idle_timeout", &value)) {
    options.idle_timeout_seconds = std::atof(value.c_str());
  }
  if (tsg::bench::ConsumeFlagValue(&argc, argv, "max_inflight", &value)) {
    options.limits.max_inflight = std::atoi(value.c_str());
  }
  if (tsg::bench::ConsumeFlagValue(&argc, argv, "max_inflight_per_tenant",
                                   &value)) {
    options.limits.max_inflight_per_tenant = std::atoi(value.c_str());
  }
  if (tsg::bench::ConsumeFlagValue(&argc, argv, "max_queued", &value)) {
    options.limits.max_queued = std::atoll(value.c_str());
  }
  const std::string usage =
      "tsgd --socket=<path> [--tcp_port=<p>] [--idle_timeout=<s>] "
      "[--max_inflight=<n>] [--max_inflight_per_tenant=<n>] "
      "[--max_queued=<n>] [--metrics_out=<path>]";
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, usage)) return 2;
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\nusage: %s\n", usage.c_str());
    return 2;
  }
  if (options.limits.max_inflight < 1 ||
      options.limits.max_inflight_per_tenant < 1 ||
      options.limits.max_queued < 1) {
    std::fprintf(stderr, "in-flight and queue limits must be >= 1\n");
    return 2;
  }

  tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  if (config.store_dir.empty()) {
    // The daemon always serves models from a store: fit publishes into it and
    // generate restores from it. Default next to the other artifacts.
    config.store_dir = config.out_dir + "/model_store";
  }
  tsg::serve::BenchJobRunner runner(config);
  tsg::serve::Server server(options, &runner);
  const tsg::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "tsgd start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // The "listening" line is the readiness handshake scripts wait for.
  std::printf("[tsgd] listening on %s", options.socket_path.c_str());
  if (server.tcp_port() > 0) {
    std::printf(" and 127.0.0.1:%d", server.tcp_port());
  }
  std::printf(" (scale=%g seed=%llu out=%s store=%s)\n", config.scale,
              static_cast<unsigned long long>(config.seed),
              config.out_dir.c_str(), config.store_dir.c_str());
  std::fflush(stdout);

  const long long done = static_cast<long long>(server.Serve());
  std::printf("[tsgd] exit: %lld job(s) completed\n", done);
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
