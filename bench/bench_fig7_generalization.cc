// Reproduces Figure 7: the §4.3 Domain-Adaptation generalization test on the three
// domain-bearing datasets — HAPT (users), Air (cities), Boiler (machines). For every
// target domain and every scenario (single / cross / reference DA) the five methods
// the paper selects (TimeGAN baseline + TimeVAE, COSCI-GAN, RTSGAN, LS4) are trained
// on the scenario's training set and evaluated against the target ground truth.

#include <cstdio>

#include "bench_util.h"
#include "core/da.h"
#include "core/harness.h"
#include "io/csv.h"
#include "io/table.h"
#include "methods/factory.h"

namespace {

using tsg::bench::BenchConfig;
using tsg::core::DaScenario;
using tsg::core::DaTask;
using tsg::core::Dataset;

/// Preprocesses one domain of a DA dataset.
Dataset PrepareDomain(tsg::data::DatasetId id, int domain_index,
                      const BenchConfig& config) {
  tsg::data::SimulatorOptions sim;
  // Same long-window cap as the main grid (all DA datasets have l >= 128).
  const tsg::data::PaperStats paper = tsg::data::GetPaperStats(id);
  sim.scale = std::min(config.dataset_scale(),
                       176.0 * config.scale / static_cast<double>(paper.r));
  sim.seed = config.seed;
  sim.domain_index = domain_index;
  const tsg::data::RawSeries raw = tsg::data::Simulate(id, sim);
  tsg::core::PreprocessOptions pre;
  pre.shuffle_seed = config.seed ^ static_cast<uint64_t>(domain_index + 1);
  tsg::core::Preprocessed processed = tsg::core::Preprocess(raw, pre);
  Dataset all = processed.train;
  all.set_name(std::string(tsg::data::DatasetName(id)) + "/" +
               tsg::data::DomainLabels(id)[static_cast<size_t>(domain_index)]);
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_fig7_generalization [--metrics_out=<path>]")) {
    return 2;
  }
  const BenchConfig config = tsg::bench::LoadConfig();
  // The paper's Figure 7 method selection: efficient leaders + TimeGAN baseline.
  const std::vector<std::string> method_names = {"TimeGAN", "TimeVAE", "COSCI-GAN",
                                                 "RTSGAN", "LS4"};
  const std::vector<tsg::data::DatasetId> da_datasets = {
      tsg::data::DatasetId::kHapt, tsg::data::DatasetId::kAir,
      tsg::data::DatasetId::kBoiler};

  tsg::core::HarnessOptions harness_options;
  harness_options.fit.epoch_scale = config.epoch_scale();
  harness_options.fit.seed = config.seed;
  harness_options.stochastic_repeats = config.stochastic_repeats();
  // The DA datasets all have long windows (l in {128, 168, 192}); a tighter
  // evaluation cap keeps the 90-cell sweep tractable at the default scale.
  harness_options.max_eval_samples =
      std::min<int64_t>(config.max_eval_samples(), config.scale >= 2.0 ? 256 : 64);
  harness_options.embedder.epochs = std::max(4, static_cast<int>(8 * config.scale));
  harness_options.seed = config.seed;
  tsg::core::Harness harness(harness_options);

  std::vector<std::vector<std::string>> csv;
  csv.push_back(
      {"dataset", "target", "scenario", "method", "measure", "mean", "stddev"});

  for (tsg::data::DatasetId id : da_datasets) {
    const auto labels = tsg::data::DomainLabels(id);
    const Dataset source = PrepareDomain(id, 0, config);
    // All targets at scale >= 2; the first two otherwise (runtime budget).
    const size_t target_count =
        config.scale >= 2.0 ? labels.size() - 1
                            : std::min<size_t>(2, labels.size() - 1);

    std::printf("\n=== Figure 7(%s): source %s ===\n",
                tsg::data::DatasetName(id), labels[0].c_str());

    for (size_t target = 1; target <= target_count; ++target) {
      const Dataset target_all =
          PrepareDomain(id, static_cast<int>(target), config);
      DaTask task;
      task.source_train = source;
      // T_t^his: a brief history — 10% of the target windows; the rest is T_t^gt.
      const int64_t his = std::max<int64_t>(4, target_all.num_samples() / 10);
      task.target_his = target_all.Head(his);
      std::vector<int64_t> gt_idx;
      for (int64_t i = his; i < target_all.num_samples(); ++i) gt_idx.push_back(i);
      task.target_gt = target_all.Select(gt_idx);
      task.source_label = labels[0];
      task.target_label = labels[target];

      std::printf("\n-- target %s (his=%lld, gt=%lld) --\n", labels[target].c_str(),
                  static_cast<long long>(task.target_his.num_samples()),
                  static_cast<long long>(task.target_gt.num_samples()));
      tsg::io::Table table({"Method", "Scenario", "DS", "PS", "C-FID", "MDD", "ACD",
                            "SD", "KD", "ED", "DTW"});

      for (const std::string& name : method_names) {
        for (DaScenario scenario : {DaScenario::kSingle, DaScenario::kCross,
                                    DaScenario::kReference}) {
          auto method = tsg::methods::CreateMethod(name);
          TSG_CHECK(method.ok());  // Names come from AllMethodNames.
          const Dataset train_set = tsg::core::BuildDaTrainingSet(task, scenario);
          if (!method.value()->Fit(train_set, harness_options.fit).ok()) continue;

          tsg::Rng rng(config.seed ^ 0xDA7);
          const int64_t count = std::min(harness_options.max_eval_samples,
                                         task.target_gt.num_samples());
          Dataset generated(name, method.value()->Generate(count, rng));
          const Dataset reference = task.target_gt.Head(count);
          const auto scores = harness.EvaluateGenerated(
              reference, task.target_gt, generated,
              target_all.name() + "_gt");
          if (!scores.ok()) {
            std::fprintf(stderr, "fig7: %s/%s failed: %s\n", name.c_str(),
                         tsg::core::DaScenarioName(scenario),
                         scores.status().ToString().c_str());
            continue;
          }

          std::vector<std::string> row = {name,
                                          tsg::core::DaScenarioName(scenario)};
          for (const auto& [measure, summary] : scores.value()) {
            row.push_back(tsg::io::Table::Num(summary.mean, 3));
            csv.push_back({tsg::data::DatasetName(id), labels[target],
                           tsg::core::DaScenarioName(scenario), name, measure,
                           std::to_string(summary.mean),
                           std::to_string(summary.std)});
          }
          table.AddRow(row);
        }
      }
      table.Print();
    }
  }

  const std::string csv_path = config.out_dir + "/fig7_da.csv";
  if (tsg::io::WriteCsvRows(csv_path, csv).ok()) {
    std::printf("\nDA grid written to %s\n", csv_path.c_str());
  }
  std::printf(
      "\nExpected shape (paper): TimeGAN shows little movement across scenarios\n"
      "(poor adaptation); TimeVAE and COSCI-GAN benefit from the target history\n"
      "(cross > reference); RTSGAN and LS4 shine in single DA via fast\n"
      "convergence; SD/KD/DTW are least informative on Boiler (no periodicity).\n");
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
