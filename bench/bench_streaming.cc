// Streaming-evaluation micro-benchmark (DESIGN.md §12): feeds one synthetic
// generation stream through a streameval::StreamEvaluator and through the
// naive alternative — re-running the batch measure suite from scratch over the
// sliding window — and writes the per-snapshot costs and their ratio to
// <out_dir>/micro_stream.json. Both paths report live: one snapshot per
// arriving chunk, the cadence a tenant watching METRICS actually gets. The
// streaming path does each expensive per-item computation (DTW tables, ACFs,
// histogram inserts) exactly once per series, so every live snapshot re-folds
// cached values; the rescan redoes the per-item work for the whole window at
// every snapshot, costing roughly window/chunk times more on the cached
// measures.
//
// Both paths compute bit-identical values (the evaluator's
// VerifyExactAgainstBatch asserts it at the final window), so the comparison
// is pure bookkeeping cost, not accuracy traded for speed.

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "base/stopwatch.h"
#include "bench_util.h"
#include "core/dataset.h"
#include "core/measures.h"
#include "data/simulators.h"
#include "io/atomic_file.h"
#include "io/json.h"
#include "streameval/stream_evaluator.h"

namespace {

using tsg::core::Dataset;
using tsg::linalg::Matrix;

constexpr int64_t kReferenceSeries = 48;
constexpr int64_t kStreamSeries = 192;
constexpr int64_t kSeqLen = 96;
constexpr int64_t kFeatures = 3;
constexpr int64_t kWindow = 32;
constexpr int64_t kChunk = 8;

/// The naive baseline: slide the window by hand and run the real batch
/// measures over it after every arriving chunk — exactly what a caller without
/// the streaming subsystem would do to get the same live numbers.
double BatchRescanSeconds(const Dataset& reference,
                          const std::vector<Matrix>& stream) {
  const tsg::core::EuclideanDistanceMeasure ed;
  const tsg::core::DtwDistanceMeasure dtw;
  const tsg::core::MarginalDistributionDifference mdd;
  const tsg::core::AutocorrelationDifference acd;
  const tsg::core::SkewnessDifference sd;
  const tsg::core::KurtosisDifference kd;

  tsg::Stopwatch watch;
  std::deque<Matrix> window;
  std::deque<int64_t> positions;
  double sink = 0.0;
  for (size_t p = 0; p < stream.size(); ++p) {
    window.push_back(stream[p]);
    positions.push_back(static_cast<int64_t>(p));
    if (static_cast<int64_t>(window.size()) > kWindow) {
      window.pop_front();
      positions.pop_front();
    }
    if ((p + 1) % kChunk != 0) continue;

    const Dataset window_ds(
        "window", std::vector<Matrix>(window.begin(), window.end()));
    std::vector<int64_t> pair_idx;
    for (const int64_t pos : positions) {
      pair_idx.push_back(pos % reference.num_samples());
    }
    const Dataset paired = reference.Select(pair_idx);

    tsg::core::MeasureContext paired_ctx;
    paired_ctx.real = &paired;
    paired_ctx.generated = &window_ds;
    tsg::core::MeasureContext full_ctx;
    full_ctx.real = &reference;
    full_ctx.generated = &window_ds;

    sink += ed.Evaluate(paired_ctx).value();
    sink += dtw.Evaluate(paired_ctx).value();
    sink += mdd.Evaluate(full_ctx).value();
    sink += acd.Evaluate(full_ctx).value();
    sink += sd.Evaluate(full_ctx).value();
    sink += kd.Evaluate(full_ctx).value();
  }
  const double seconds = watch.ElapsedSeconds();
  std::fprintf(stderr, "[stream] batch rescan sink %.6f\n", sink);
  return seconds;
}

/// The streaming path: the evaluator consumes the stream in kChunk batches;
/// boundary snapshots (including drift tracking) happen inside Update.
double StreamingSeconds(tsg::streameval::StreamEvaluator& eval,
                        const std::vector<Matrix>& stream) {
  tsg::Stopwatch watch;
  for (size_t i = 0; i < stream.size(); i += kChunk) {
    const size_t take =
        std::min(static_cast<size_t>(kChunk), stream.size() - i);
    const std::vector<Matrix> batch(stream.begin() + i,
                                    stream.begin() + i + take);
    const tsg::Status status = eval.Update(batch);
    if (!status.ok()) {
      std::fprintf(stderr, "[stream] update failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    // Live per-chunk reporting, matching the rescan loop's cadence.
    const auto snapshot = eval.SnapshotNow();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "[stream] snapshot failed: %s\n",
                   snapshot.status().ToString().c_str());
      std::exit(1);
    }
  }
  return watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();

  const Dataset reference(
      "ref", tsg::data::SineBenchmark(kReferenceSeries, kSeqLen, kFeatures,
                                      /*seed=*/41));
  const std::vector<Matrix> stream =
      tsg::data::SineBenchmark(kStreamSeries, kSeqLen, kFeatures, /*seed=*/42);

  tsg::streameval::StreamEvalOptions options;
  options.window = kWindow;
  // Keep the timed comparison to the measures with an incremental or cached
  // core: FGD has no batch counterpart in the rescan loop, and MMD recomputes
  // identical O(window^2) kernel sums in both paths (windowed-exact, no
  // incremental core — see docs/MEASURES.md), which would only dilute the
  // caching signal being measured.
  options.include_feature_gaussian = false;
  options.include_mmd = false;
  auto eval_or = tsg::streameval::StreamEvaluator::Create(reference, options);
  if (!eval_or.ok()) {
    std::fprintf(stderr, "[stream] create failed: %s\n",
                 eval_or.status().ToString().c_str());
    return 1;
  }
  tsg::streameval::StreamEvaluator* eval = eval_or.value().get();

  const double stream_seconds = StreamingSeconds(*eval, stream);
  const double batch_seconds = BatchRescanSeconds(reference, stream);

  // Both paths must agree bit for bit before the timings mean anything.
  const tsg::Status exact = eval->VerifyExactAgainstBatch();
  if (!exact.ok()) {
    std::fprintf(stderr, "[stream] exactness check failed: %s\n",
                 exact.ToString().c_str());
    return 1;
  }

  const int64_t windows = eval->windows_completed();
  const int64_t snapshots = kStreamSeries / kChunk;
  tsg::io::JsonWriter json;
  json.BeginObject();
  json.Key("reference_series").Int(kReferenceSeries);
  json.Key("stream_series").Int(kStreamSeries);
  json.Key("seq_len").Int(kSeqLen);
  json.Key("features").Int(kFeatures);
  json.Key("window").Int(kWindow);
  json.Key("chunk").Int(kChunk);
  json.Key("windows").Int(windows);
  json.Key("snapshots").Int(snapshots);
  json.Key("streaming_seconds").Number(stream_seconds);
  json.Key("batch_rescan_seconds").Number(batch_seconds);
  json.Key("streaming_seconds_per_snapshot").Number(stream_seconds / snapshots);
  json.Key("batch_seconds_per_snapshot").Number(batch_seconds / snapshots);
  json.Key("speedup").Number(batch_seconds / stream_seconds);
  json.Key("exact").Bool(true);
  json.Key("final_snapshot").BeginObject();
  for (const auto& [name, value] : eval->last_snapshot()) {
    json.Key(name).Number(value);
  }
  json.EndObject();
  json.EndObject();

  const std::string path = config.out_dir + "/micro_stream.json";
  const tsg::Status s = tsg::io::WriteFileAtomic(path, json.str() + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "[stream] write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[stream] %lld windows  streaming %.4fs  rescan %.4fs  "
               "speedup %.2fx  wrote %s\n",
               static_cast<long long>(windows), stream_seconds, batch_seconds,
               batch_seconds / stream_seconds, path.c_str());
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
