// Reproduces Figure 4: the survey of which evaluation measures popular TSG methods
// use, reconstructed from the citations in the paper's §4.2. The pattern the paper
// reads off this figure — DS and PS dominate, feature- and distance-based measures
// are rare, only TSGBench covers all columns — is printed as a summary.

#include <cstdio>

#include "bench_util.h"
#include "core/taxonomy.h"
#include "io/table.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_fig4_measure_survey [--metrics_out=<path>]")) {
    return 2;
  }
  using tsg::core::MeasureSurvey;
  using tsg::core::MeasureSurveyColumns;

  std::printf("=== Figure 4: evaluation measures used by popular TSG methods ===\n\n");
  std::vector<std::string> header = {"Method"};
  for (const auto& column : MeasureSurveyColumns()) header.push_back(column);
  tsg::io::Table table(header);
  std::vector<int> counts(MeasureSurveyColumns().size(), 0);
  for (const auto& row : MeasureSurvey()) {
    std::vector<std::string> cells = {row.method};
    for (size_t i = 0; i < row.uses.size(); ++i) {
      cells.push_back(row.uses[i] ? "x" : "");
      counts[i] += row.uses[i];
    }
    table.AddRow(cells);
  }
  table.Print();

  std::printf("\nUsage counts per measure (the figure's takeaway):\n");
  for (size_t i = 0; i < counts.size(); ++i) {
    std::printf("  %-10s %d\n", MeasureSurveyColumns()[i].c_str(), counts[i]);
  }
  std::printf("\nDS/PS dominate prior evaluations; TSGBench is the only row covering "
              "the full suite.\n");
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
