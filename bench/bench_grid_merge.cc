// Sharded-grid supervisor: run after the bench_grid_worker processes exit.
// Reclaims leftover leases (stale, or orphaned next to finished checkpoints),
// loads every cell's checkpoint, computes any cell no worker finished (unless
// --require_complete), and writes the grid summary + cache CSV. The summary is
// byte-identical to a single-process RunGrid of the same config.
//
// Flags: --methods=A,B --datasets=d1,d2 (default: full 10x10 paper grid),
// --require_complete (strict: a missing checkpoint is an error),
// --lease_stale_seconds=<s>, --metrics_out=<path>.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/simulators.h"
#include "methods/factory.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  std::string methods_csv;
  std::string datasets_csv;
  tsg::bench::MergeOptions options;
  options.compute_missing =
      !tsg::bench::ConsumeFlag(&argc, argv, "require_complete");
  std::string value;
  tsg::bench::ConsumeFlagValue(&argc, argv, "methods", &methods_csv);
  tsg::bench::ConsumeFlagValue(&argc, argv, "datasets", &datasets_csv);
  if (tsg::bench::ConsumeFlagValue(&argc, argv, "lease_stale_seconds", &value)) {
    options.lease_stale_seconds = std::atof(value.c_str());
  }
  if (!tsg::bench::RequireNoUnknownFlags(
          argc, argv,
          "bench_grid_merge [--methods=A,B] [--datasets=d1,d2] "
          "[--require_complete] [--lease_stale_seconds=<s>] "
          "[--metrics_out=<path>]")) {
    return 2;
  }
  if (argc > 1) {
    std::fprintf(stderr, "unknown argument: %s\n", argv[1]);
    return 2;
  }

  const auto methods = tsg::bench::ParseMethodList(methods_csv);
  const auto datasets = tsg::bench::ParseDatasetList(datasets_csv);
  if (!methods.ok()) {
    std::fprintf(stderr, "%s\n", methods.status().ToString().c_str());
    return 2;
  }
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 2;
  }

  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  const auto merged = tsg::bench::MergeGridShards(config, methods.value(),
                                                  datasets.value(), options);
  if (!merged.ok()) {
    std::fprintf(stderr, "[grid-merge] merge failed: %s\n",
                 merged.status().ToString().c_str());
    tsg::bench::WriteMetricsSnapshot();
    return 1;
  }
  const size_t failures = tsg::bench::ReportFailures(merged.value());
  std::printf("[grid-merge] %zu rows, %zu failed cells; summary at %s\n",
              merged.value().rows.size(), failures,
              tsg::bench::GridSummaryPath(config).c_str());
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
