// Reproduces Figure 5: the main TSG benchmarking grid — ten methods x ten datasets
// across the measure suite (DS, PS, C-FID, MDD, ACD, SD, KD, ED, DTW) plus the
// training-time row bucketed into the paper's four segments. One table is printed
// per measure (rows = methods, columns = datasets) and the full long-format grid is
// written to <out>/fig5_grid.csv.

#include <cstdio>

#include "bench_util.h"
#include "io/csv.h"
#include "io/table.h"
#include "methods/factory.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_fig5_main [--metrics_out=<path>]")) {
    return 2;
  }
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  const auto& methods = tsg::methods::AllMethodNames();
  const auto datasets = tsg::data::AllDatasets();

  const auto grid = tsg::bench::LoadOrComputeGrid(config, methods, datasets);
  tsg::bench::ReportFailures(grid);
  const auto& rows = grid.rows;
  const auto measures = tsg::bench::DistinctMeasures(rows);
  const auto dataset_names = tsg::bench::DistinctDatasets(rows);

  std::printf("=== Figure 5: TSG benchmarking (scale=%.2f; lower is better) ===\n",
              config.scale);

  auto find = [&rows](const std::string& method, const std::string& dataset,
                      const std::string& measure) -> const tsg::bench::GridRow* {
    for (const auto& row : rows) {
      if (row.method == method && row.dataset == dataset && row.measure == measure) {
        return &row;
      }
    }
    return nullptr;
  };

  for (const std::string& measure : measures) {
    std::printf("\n--- %s ---\n", measure.c_str());
    std::vector<std::string> header = {"Method"};
    for (const auto& d : dataset_names) header.push_back(d);
    tsg::io::Table table(header);
    for (const std::string& method : methods) {
      std::vector<std::string> cells = {method};
      for (const auto& dataset : dataset_names) {
        const auto* row = find(method, dataset, measure);
        cells.push_back(row != nullptr ? tsg::io::Table::Num(row->mean, 3) : "-");
      }
      table.AddRow(cells);
    }
    table.Print();
  }

  // Training-time row (M8), bucketed as in the figure's bottom row.
  std::printf("\n--- Training time (M8) ---\n");
  std::vector<std::string> header = {"Method"};
  for (const auto& d : dataset_names) header.push_back(d);
  tsg::io::Table time_table(header);
  for (const std::string& method : methods) {
    std::vector<std::string> cells = {method};
    for (const auto& dataset : dataset_names) {
      const auto* row = find(method, dataset, measures[0]);
      if (row == nullptr) {
        cells.push_back("-");
        continue;
      }
      cells.push_back(tsg::io::Table::Num(row->fit_seconds, 1) + "s (" +
                      tsg::core::Harness::TrainingTimeBucket(row->fit_seconds) + ")");
    }
    time_table.AddRow(cells);
  }
  time_table.Print();

  // Long-format CSV for downstream plotting.
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"method", "dataset", "measure", "mean", "stddev", "fit_seconds"});
  for (const auto& row : rows) {
    csv.push_back({row.method, row.dataset, row.measure, std::to_string(row.mean),
                   std::to_string(row.stddev), std::to_string(row.fit_seconds)});
  }
  const std::string csv_path = config.out_dir + "/fig5_grid.csv";
  if (tsg::io::WriteCsvRows(csv_path, csv).ok()) {
    std::printf("\nGrid written to %s\n", csv_path.c_str());
  }

  std::printf(
      "\nExpected shape (paper): VAE-family (TimeVQVAE, TimeVAE, LS4) plus RTSGAN\n"
      "and COSCI-GAN lead; VAE methods dominate ED/DTW and train fastest;\n"
      "FourierFlow leads ACD; RGAN trails; GT-GAN is the slowest trainer.\n");
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
