// Reproduces Table 2: the taxonomy of popular TSG methods with backbone models and
// specialties, marking the ten methods (A1-A10) this benchmark evaluates.

#include <cstdio>

#include "bench_util.h"
#include "core/taxonomy.h"
#include "io/table.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_table2_taxonomy [--metrics_out=<path>]")) {
    return 2;
  }
  std::printf("=== Table 2: Summary of popular TSG methods ===\n\n");
  tsg::io::Table table({"Year", "Method", "Model", "Specialty", "Evaluated"});
  for (const auto& entry : tsg::core::Taxonomy()) {
    table.AddRow({std::to_string(entry.year), entry.method, entry.model,
                  entry.specialty, entry.evaluated ? "yes (A-series)" : ""});
  }
  table.Print();
  std::printf("\n%zu methods total; 10 evaluated by TSGBench.\n",
              tsg::core::Taxonomy().size());
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
