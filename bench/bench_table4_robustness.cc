// Reproduces Table 4: the §6.3 robustness test for the evaluation measures.
// Synthetic sine data x[i][j] = sin(2*pi*eta*j + theta) with N = 5 is evaluated at
// l = 24 and l = 125 under two input scenarios:
//   Identical        — generated == original: every ideal measure should be ~0;
//   Random Sampling  — an independent draw from the same sine family.
// The paper's finding: feature-based, distance-based measures and C-FID react
// correctly, while DS/PS are noisy (high std) and can even score the random draw
// *better* than the identical input at l = 125.

#include <cstdio>

#include "bench_util.h"
#include "core/dataset.h"
#include "core/harness.h"
#include "data/simulators.h"
#include "io/table.h"

namespace {

using tsg::core::Dataset;

void RunShape(tsg::core::Harness& harness, int64_t count, int64_t l, int64_t n,
              uint64_t seed, tsg::io::Table& table) {
  const Dataset original("sine", tsg::data::SineBenchmark(count, l, n, seed));
  const Dataset resampled("sine", tsg::data::SineBenchmark(count, l, n, seed + 1));
  const std::string shape = "(" + std::to_string(count) + "," + std::to_string(l) +
                            "," + std::to_string(n) + ")";
  const std::string key = "sine_l" + std::to_string(l);

  for (const bool identical : {true, false}) {
    const Dataset& generated = identical ? original : resampled;
    const auto scores =
        harness.EvaluateGenerated(original, original, generated, key);
    if (!scores.ok()) {
      std::fprintf(stderr, "table4: evaluation failed: %s\n",
                   scores.status().ToString().c_str());
      continue;
    }
    std::vector<std::string> row = {identical ? "Identical" : "RandomSampling",
                                    shape};
    for (const auto& [name, summary] : scores.value()) {
      (void)name;
      row.push_back(tsg::io::Table::MeanStd(summary.mean, summary.std, 3));
    }
    table.AddRow(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_table4_robustness [--metrics_out=<path>]")) {
    return 2;
  }
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  // The paper uses 10,000 series; scale it down for quick runs.
  const int64_t count =
      std::min<int64_t>(10000, static_cast<int64_t>(400 * config.scale));

  tsg::core::HarnessOptions options;
  options.stochastic_repeats = config.stochastic_repeats();
  options.max_eval_samples = count;
  options.include_ps_entire = true;
  options.embedder.epochs = std::max(4, static_cast<int>(8 * config.scale));
  options.seed = config.seed;
  tsg::core::Harness harness(options);

  std::printf("=== Table 4: robustness test on the evaluation measures "
              "(%lld series per cell) ===\n\n",
              static_cast<long long>(count));

  std::vector<std::string> header = {"Input", "Shape(R,l,N)"};
  for (const auto& measure : tsg::core::DefaultMeasureSuite(true)) {
    header.push_back(measure->name());
  }
  tsg::io::Table table(header);
  RunShape(harness, count, 24, 5, config.seed, table);
  RunShape(harness, count, 125, 5, config.seed + 100, table);
  table.Print();

  std::printf(
      "\nExpected shape (paper): Identical rows ~0 everywhere except the TSTR\n"
      "measures (DS/PS), whose post-hoc training noise keeps them nonzero; on\n"
      "RandomSampling the deterministic measures move well away from 0 while DS\n"
      "stays small with a large relative std — the paper's robustness critique.\n");
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
