#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include <cstring>

#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "io/atomic_file.h"
#include "io/csv.h"
#include "io/json.h"
#include "io/lease.h"
#include "methods/factory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/artifact_store.h"

namespace tsg::bench {

namespace {

std::string g_metrics_out;

}  // namespace

void ParseBenchFlags(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    constexpr const char* kPrefix = "--metrics_out=";
    if (std::strncmp(argv[i], kPrefix, std::strlen(kPrefix)) == 0) {
      g_metrics_out = argv[i] + std::strlen(kPrefix);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;
}

const std::string& MetricsOutPath() { return g_metrics_out; }

bool ConsumeFlag(int* argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  bool found = false;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (flag == argv[i]) {
      found = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;
  return found;
}

bool RequireNoUnknownFlags(int argc, char** argv, const std::string& usage) {
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      ok = false;
    }
  }
  if (!ok) std::fprintf(stderr, "usage: %s\n", usage.c_str());
  return ok;
}

bool ConsumeFlagValue(int* argc, char** argv, const std::string& name,
                      std::string* value) {
  const std::string prefix = "--" + name + "=";
  bool found = false;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *value = argv[i] + prefix.size();
      found = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;
  return found;
}

void WriteMetricsSnapshot() {
  if (g_metrics_out.empty()) return;
  const Status s = obs::MetricRegistry::Global().WriteSnapshot(g_metrics_out);
  if (!s.ok()) {
    std::fprintf(stderr, "metrics snapshot write failed: %s\n",
                 s.ToString().c_str());
  } else {
    std::fprintf(stderr, "[obs] metrics snapshot written to %s\n",
                 g_metrics_out.c_str());
  }
}

BenchConfig LoadConfig() {
  BenchConfig config;
  if (const char* scale = std::getenv("TSGBENCH_SCALE")) {
    config.scale = std::max(0.05, std::atof(scale));
  }
  if (const char* seed = std::getenv("TSGBENCH_SEED")) {
    config.seed = static_cast<uint64_t>(std::atoll(seed));
  }
  if (const char* out = std::getenv("TSGBENCH_OUT")) {
    config.out_dir = out;
  }
  if (const char* store_dir = std::getenv("TSGBENCH_STORE_DIR")) {
    config.store_dir = store_dir;
  }
  std::filesystem::create_directories(config.out_dir);
  return config;
}

core::Preprocessed PrepareDataset(data::DatasetId id, const BenchConfig& config) {
  data::SimulatorOptions sim;
  const data::PaperStats paper = data::GetPaperStats(id);
  // Long-sequence datasets cost ~l per training step; cap their window count so the
  // default grid finishes in minutes while the R ordering across datasets survives.
  const double window_cap = (paper.l >= 100 ? 176.0 : 352.0) * config.scale;
  sim.scale = std::min(config.dataset_scale(),
                       window_cap / static_cast<double>(paper.r));
  sim.seed = config.seed;
  const data::RawSeries raw = data::Simulate(id, sim);
  core::PreprocessOptions pre;
  pre.shuffle_seed = config.seed ^ 0x5481;
  return core::Preprocess(raw, pre);
}

namespace {

/// %.17g: doubles survive a write -> parse -> write cycle bit-for-bit, which the
/// kill/resume byte-identical guarantee depends on.
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string ConfigKey(const BenchConfig& config) {
  std::ostringstream os;
  os << "s" << config.scale << "_r" << config.seed;
  return os.str();
}

std::string CachePath(const BenchConfig& config) {
  return config.out_dir + "/grid_cells_" + ConfigKey(config) + ".csv";
}

/// Keeps method/dataset names filesystem-safe for checkpoint file names.
std::string SanitizeFileName(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  return out;
}

/// One row per measure for a completed cell, or a single error row for a failed
/// one. Shared by the per-cell checkpoint files and the whole-grid cache CSV.
const std::vector<std::string>& CellCsvHeader() {
  static const auto* kHeader = new std::vector<std::string>{
      "status", "method", "dataset", "measure",
      "mean",   "stddev", "fit_seconds", "error"};
  return *kHeader;
}

struct CellOutcome {
  bool failed = false;
  std::vector<GridRow> rows;   ///< Populated when !failed.
  CellError error;             ///< Populated when failed.
};

std::vector<std::vector<std::string>> CellToCsvRows(const CellOutcome& cell) {
  std::vector<std::vector<std::string>> lines;
  if (cell.failed) {
    lines.push_back({"error", cell.error.method, cell.error.dataset, "", "", "",
                     "", cell.error.error});
    return lines;
  }
  for (const GridRow& row : cell.rows) {
    lines.push_back({"ok", row.method, row.dataset, row.measure,
                     FormatDouble(row.mean), FormatDouble(row.stddev),
                     FormatDouble(row.fit_seconds), ""});
  }
  return lines;
}

/// Parses checkpoint/cache body rows (header already stripped). Returns false on
/// any malformed row so a corrupt file falls back to recomputation.
bool ParseCellCsvRows(const std::vector<std::vector<std::string>>& lines,
                      std::vector<GridRow>* rows,
                      std::vector<CellError>* failures) {
  for (const auto& cells : lines) {
    if (cells.size() != CellCsvHeader().size()) return false;
    if (cells[0] == "ok") {
      GridRow row;
      row.method = cells[1];
      row.dataset = cells[2];
      row.measure = cells[3];
      char* end = nullptr;
      row.mean = std::strtod(cells[4].c_str(), &end);
      row.stddev = std::strtod(cells[5].c_str(), &end);
      row.fit_seconds = std::strtod(cells[6].c_str(), &end);
      rows->push_back(std::move(row));
    } else if (cells[0] == "error") {
      failures->push_back({cells[1], cells[2], cells[7]});
    } else {
      return false;
    }
  }
  return true;
}

std::string CheckpointPath(const BenchConfig& config, const std::string& method,
                           const std::string& dataset) {
  return CheckpointDir(config) + "/" + SanitizeFileName(method) + "__" +
         SanitizeFileName(dataset) + ".csv";
}

/// Ownership marker for one in-flight cell of a sharded run. Lives next to the
/// checkpoint; the `.lease` suffix keeps it out of the `*.csv` checkpoint glob.
std::string CellLeasePath(const BenchConfig& config, const std::string& method,
                          const std::string& dataset) {
  return CheckpointPath(config, method, dataset) + ".lease";
}

Status WriteCellCheckpoint(const BenchConfig& config, const CellOutcome& cell) {
  const std::string& method =
      cell.failed ? cell.error.method : cell.rows.front().method;
  const std::string& dataset =
      cell.failed ? cell.error.dataset : cell.rows.front().dataset;
  std::vector<std::vector<std::string>> lines;
  lines.push_back(CellCsvHeader());
  for (auto& line : CellToCsvRows(cell)) lines.push_back(std::move(line));
  return io::WriteCsvRows(CheckpointPath(config, method, dataset), lines);
}

/// Loads a completed cell's checkpoint; returns false when absent or invalid (the
/// cell is then recomputed — never trust a partial or stale file).
bool LoadCellCheckpoint(const BenchConfig& config, const std::string& method,
                        const std::string& dataset, CellOutcome* cell) {
  const std::string path = CheckpointPath(config, method, dataset);
  if (!std::filesystem::exists(path)) return false;
  auto records = io::ReadCsvRows(path);
  if (!records.ok() || records.value().size() < 2) return false;
  if (records.value()[0] != CellCsvHeader()) return false;
  std::vector<GridRow> rows;
  std::vector<CellError> failures;
  const std::vector<std::vector<std::string>> body(records.value().begin() + 1,
                                                   records.value().end());
  if (!ParseCellCsvRows(body, &rows, &failures)) return false;
  // A checkpoint holds exactly one cell: either score rows or one error record.
  if (!failures.empty()) {
    if (failures.size() != 1 || !rows.empty()) return false;
    if (failures[0].method != method || failures[0].dataset != dataset) {
      return false;
    }
    cell->failed = true;
    cell->error = failures[0];
    return true;
  }
  if (rows.empty()) return false;
  for (const GridRow& row : rows) {
    if (row.method != method || row.dataset != dataset) return false;
  }
  cell->failed = false;
  cell->rows = std::move(rows);
  return true;
}

bool ReadCache(const std::string& path, GridResult* result) {
  if (!std::filesystem::exists(path)) return false;
  auto records = io::ReadCsvRows(path);
  if (!records.ok() || records.value().size() < 2) return false;
  if (records.value()[0] != CellCsvHeader()) return false;
  const std::vector<std::vector<std::string>> body(records.value().begin() + 1,
                                                   records.value().end());
  return ParseCellCsvRows(body, &result->rows, &result->failures);
}

void WriteCache(const std::string& path, const GridResult& result) {
  std::vector<std::vector<std::string>> lines;
  lines.push_back(CellCsvHeader());
  for (const GridRow& row : result.rows) {
    lines.push_back({"ok", row.method, row.dataset, row.measure,
                     FormatDouble(row.mean), FormatDouble(row.stddev),
                     FormatDouble(row.fit_seconds), ""});
  }
  for (const CellError& failure : result.failures) {
    lines.push_back(
        {"error", failure.method, failure.dataset, "", "", "", "", failure.error});
  }
  const Status s = io::WriteCsvRows(path, lines);
  if (!s.ok()) std::fprintf(stderr, "cache write failed: %s\n", s.ToString().c_str());
}

/// The cache covers the request when every (method, dataset) cell was at least
/// *attempted* — failed cells count, so a grid with a known-bad cell does not
/// recompute forever.
bool CacheCovers(const GridResult& result, const std::vector<std::string>& methods,
                 const std::vector<data::DatasetId>& datasets) {
  std::set<std::pair<std::string, std::string>> attempted;
  for (const GridRow& r : result.rows) attempted.insert({r.method, r.dataset});
  for (const CellError& f : result.failures) {
    attempted.insert({f.method, f.dataset});
  }
  for (const std::string& method : methods) {
    for (data::DatasetId id : datasets) {
      if (attempted.count({method, data::DatasetName(id)}) == 0) return false;
    }
  }
  return true;
}

/// Deterministic JSON artifact: per-cell status and scores in sweep order, no
/// wall-clock values — identical bytes for a clean run and a kill/resume run.
void WriteGridSummary(const BenchConfig& config,
                      const std::vector<std::string>& methods,
                      const std::vector<data::DatasetId>& datasets,
                      const std::vector<CellOutcome>& outcomes) {
  io::JsonWriter json;
  json.BeginObject();
  json.Key("scale").Number(config.scale);
  json.Key("seed").Int(static_cast<int64_t>(config.seed));
  json.Key("methods").BeginArray();
  for (const std::string& m : methods) json.String(m);
  json.EndArray();
  json.Key("datasets").BeginArray();
  for (data::DatasetId id : datasets) json.String(data::DatasetName(id));
  json.EndArray();
  json.Key("cells").BeginArray();
  for (const CellOutcome& cell : outcomes) {
    json.BeginObject();
    if (cell.failed) {
      json.Key("method").String(cell.error.method);
      json.Key("dataset").String(cell.error.dataset);
      json.Key("status").String("error");
      json.Key("error").String(cell.error.error);
    } else {
      json.Key("method").String(cell.rows.front().method);
      json.Key("dataset").String(cell.rows.front().dataset);
      json.Key("status").String("ok");
      json.Key("scores").BeginObject();
      for (const GridRow& row : cell.rows) {
        json.Key(row.measure).BeginObject();
        json.Key("mean").Number(row.mean);
        json.Key("stddev").Number(row.stddev);
        json.EndObject();
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  const Status s = io::WriteFileAtomic(GridSummaryPath(config), json.str() + "\n");
  if (!s.ok()) {
    obs::MetricRegistry::Global().GetCounter("grid.summary_write_failures").Add();
    std::fprintf(stderr, "summary write failed: %s\n", s.ToString().c_str());
  }
}

/// Harness plus the optional artifact store it serves from, configured
/// identically for every grid execution mode (in-process RunGrid, sharded
/// workers, merge stragglers) so each mode computes bit-identical cells.
struct GridHarness {
  std::unique_ptr<store::ArtifactStore> store;
  std::unique_ptr<core::Harness> harness;
};

GridHarness MakeGridHarness(const BenchConfig& config) {
  core::HarnessOptions options = GridHarnessOptions(config);
  GridHarness grid;
  // With a store configured, every cell checks for a prior fitted model before
  // training and publishes its model after. ArtifactStore is stateless over
  // atomic file operations, so concurrent cells — and concurrent worker
  // processes — can share it.
  if (!config.store_dir.empty()) {
    grid.store = std::make_unique<store::ArtifactStore>(config.store_dir);
    options.store = grid.store.get();
    std::fprintf(stderr, "[grid] artifact store at %s\n",
                 config.store_dir.c_str());
  }
  grid.harness = std::make_unique<core::Harness>(options);
  return grid;
}

/// Fits and evaluates one (method, dataset) cell. Deterministic in
/// (config, method, dataset): the cell seeds its Rng chain from the harness
/// options alone, so any process computing it produces identical rows.
CellOutcome ComputeCell(core::Harness& harness, const std::string& method_name,
                        const core::Preprocessed& pre) {
  CellOutcome outcome;
  const obs::ScopedTimer cell_span("grid.cell");
  obs::MetricRegistry::Global().GetCounter("grid.cells.computed").Add();
  auto method = methods::CreateMethod(method_name);
  if (!method.ok()) {
    outcome.failed = true;
    outcome.error = {method_name, pre.train.name(), method.status().ToString()};
    return outcome;
  }
  auto result = harness.RunMethod(*method.value(), pre.train, pre.test);
  if (!result.ok()) {
    outcome.failed = true;
    outcome.error = {method_name, pre.train.name(), result.status().ToString()};
    std::fprintf(stderr, "[grid]   %-12s / %-10s FAILED: %s\n",
                 method_name.c_str(), pre.train.name().c_str(),
                 result.status().ToString().c_str());
    return outcome;
  }
  outcome.rows.reserve(result.value().scores.size());
  for (const auto& [measure, summary] : result.value().scores) {
    outcome.rows.push_back({method_name, pre.train.name(), measure, summary.mean,
                            summary.std, result.value().fit_seconds});
  }
  std::fprintf(stderr, "[grid]   %-12s / %-10s fit %.1fs\n", method_name.c_str(),
               pre.train.name().c_str(), result.value().fit_seconds);
  return outcome;
}

/// Splits "a,b,c" into {"a","b","c"}; empty segments are dropped.
std::vector<std::string> SplitCsvList(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Simulates + preprocesses datasets on first use, so a shard worker or merge
/// supervisor only pays for the datasets of the cells it actually computes.
class LazyDatasets {
 public:
  LazyDatasets(const BenchConfig& config, std::vector<data::DatasetId> ids)
      : config_(config), ids_(std::move(ids)), prepared_(ids_.size()),
        ready_(ids_.size(), false) {}

  const core::Preprocessed& Get(size_t index) {
    if (!ready_[index]) {
      const obs::ScopedTimer prepare_span("grid.prepare_dataset");
      prepared_[index] = PrepareDataset(ids_[index], config_);
      ready_[index] = true;
    }
    return prepared_[index];
  }

 private:
  const BenchConfig& config_;
  const std::vector<data::DatasetId> ids_;
  std::vector<core::Preprocessed> prepared_;
  std::vector<bool> ready_;
};

}  // namespace

core::HarnessOptions GridHarnessOptions(const BenchConfig& config) {
  core::HarnessOptions options;
  options.fit.epoch_scale = config.epoch_scale();
  options.fit.seed = config.seed;
  options.stochastic_repeats = config.stochastic_repeats();
  options.max_eval_samples = config.max_eval_samples();
  options.embedder.epochs = std::max(4, static_cast<int>(10 * config.scale));
  options.seed = config.seed;
  return options;
}

std::string CheckpointDir(const BenchConfig& config) {
  return config.out_dir + "/grid_ckpt_" + ConfigKey(config);
}

std::string GridSummaryPath(const BenchConfig& config) {
  return config.out_dir + "/grid_summary_" + ConfigKey(config) + ".json";
}

GridResult RunGrid(const BenchConfig& config,
                   const std::vector<std::string>& methods,
                   const std::vector<data::DatasetId>& datasets) {
  obs::MetricRegistry& metrics = obs::MetricRegistry::Global();
  obs::ScopedTimer grid_span("grid.run");
  const GridHarness grid = MakeGridHarness(config);
  core::Harness& harness = *grid.harness;

  std::filesystem::create_directories(CheckpointDir(config));

  // Resume pass: load completed cells from their checkpoints. Skipping them is
  // sound because each cell seeds its Rng chain from the config alone and the
  // shared embedder fit is deterministic — no cell's result depends on whether
  // another cell was computed in this process or a previous one.
  const int64_t num_methods = static_cast<int64_t>(methods.size());
  const int64_t num_cells = static_cast<int64_t>(datasets.size()) * num_methods;
  std::vector<CellOutcome> outcomes(static_cast<size_t>(num_cells));
  std::vector<bool> done(static_cast<size_t>(num_cells), false);
  int64_t resumed = 0;
  for (int64_t cell = 0; cell < num_cells; ++cell) {
    const std::string dataset =
        data::DatasetName(datasets[static_cast<size_t>(cell / num_methods)]);
    const std::string& method = methods[static_cast<size_t>(cell % num_methods)];
    if (LoadCellCheckpoint(config, method, dataset,
                           &outcomes[static_cast<size_t>(cell)])) {
      done[static_cast<size_t>(cell)] = true;
      ++resumed;
    }
  }
  if (resumed > 0) {
    std::fprintf(stderr, "[grid] resumed %lld/%lld cells from %s\n",
                 static_cast<long long>(resumed),
                 static_cast<long long>(num_cells), CheckpointDir(config).c_str());
  }
  metrics.GetCounter("grid.cells.total").Add(num_cells);
  metrics.GetCounter("grid.cells.resumed").Add(resumed);

  // Stage 1: simulate + preprocess each dataset that still has pending cells
  // (independent and deterministic).
  std::vector<bool> dataset_needed(datasets.size(), false);
  for (int64_t cell = 0; cell < num_cells; ++cell) {
    if (!done[static_cast<size_t>(cell)]) {
      dataset_needed[static_cast<size_t>(cell / num_methods)] = true;
    }
  }
  const auto prepared = base::ParallelMap<core::Preprocessed>(
      static_cast<int64_t>(datasets.size()), 1, [&](int64_t di) {
        if (!dataset_needed[static_cast<size_t>(di)]) return core::Preprocessed();
        const obs::ScopedTimer prepare_span("grid.prepare_dataset");
        core::Preprocessed pre =
            PrepareDataset(datasets[static_cast<size_t>(di)], config);
        std::fprintf(stderr, "[grid] dataset %s: R_train=%lld l=%lld N=%lld\n",
                     pre.train.name().c_str(),
                     static_cast<long long>(pre.train.num_samples()),
                     static_cast<long long>(pre.train.seq_len()),
                     static_cast<long long>(pre.train.num_features()));
        return pre;
      });

  // Stage 2: fit + evaluate every pending (method, dataset) cell concurrently.
  // Each cell builds its own method instance and seeds its Rng chain from the
  // config alone, so cells never share mutable state (the harness serializes its
  // embedder cache internally) and the row order below matches the serial
  // dataset-major sweep. A failed cell becomes an error record — the rest of the
  // grid completes — and every finished cell checkpoints its own file atomically
  // right away, so a kill at any point loses at most the in-flight cells.
  base::ParallelFor(0, num_cells, 1, [&](int64_t chunk_begin, int64_t chunk_end) {
   for (int64_t cell = chunk_begin; cell < chunk_end; ++cell) {
    if (done[static_cast<size_t>(cell)]) continue;
    const core::Preprocessed& pre = prepared[static_cast<size_t>(cell / num_methods)];
    const std::string& method_name =
        methods[static_cast<size_t>(cell % num_methods)];
    CellOutcome& outcome = outcomes[static_cast<size_t>(cell)];
    outcome = ComputeCell(harness, method_name, pre);
    const Status ckpt = WriteCellCheckpoint(config, outcome);
    if (!ckpt.ok()) {
      metrics.GetCounter("grid.checkpoint_write_failures").Add();
      std::fprintf(stderr, "checkpoint write failed: %s\n",
                   ckpt.ToString().c_str());
    }
   }
  });

  GridResult result;
  for (const CellOutcome& outcome : outcomes) {
    if (outcome.failed) {
      metrics.GetCounter("grid.cells.failed").Add();
      result.failures.push_back(outcome.error);
    } else {
      metrics.GetCounter("grid.cells.ok").Add();
      result.rows.insert(result.rows.end(), outcome.rows.begin(),
                         outcome.rows.end());
    }
  }
  WriteGridSummary(config, methods, datasets, outcomes);
  return result;
}

StatusOr<int64_t> RunGridShard(const BenchConfig& config,
                               const std::vector<std::string>& methods,
                               const std::vector<data::DatasetId>& datasets,
                               const ShardOptions& options) {
  obs::MetricRegistry& metrics = obs::MetricRegistry::Global();
  obs::ScopedTimer shard_span("grid.shard.run");
  const GridHarness grid = MakeGridHarness(config);
  std::filesystem::create_directories(CheckpointDir(config));
  const std::string& token = io::LeaseOwnerToken();
  const char* label = options.worker_label.c_str();

  const int64_t num_methods = static_cast<int64_t>(methods.size());
  const int64_t num_cells = static_cast<int64_t>(datasets.size()) * num_methods;
  LazyDatasets prepared(config, datasets);
  std::vector<bool> done(static_cast<size_t>(num_cells), false);

  int64_t completed = 0;
  auto last_progress = std::chrono::steady_clock::now();
  for (;;) {
    bool progressed = false;
    for (int64_t cell = 0; cell < num_cells; ++cell) {
      if (options.should_stop && options.should_stop()) {
        metrics.GetCounter("grid.shard.stopped").Add();
        std::fprintf(stderr, "[%s] stop requested after %lld cells\n", label,
                     static_cast<long long>(completed));
        return Status::FailedPrecondition(options.worker_label +
                                          ": stopped before grid completion");
      }
      if (done[static_cast<size_t>(cell)]) continue;
      const size_t di = static_cast<size_t>(cell / num_methods);
      const std::string dataset = data::DatasetName(datasets[di]);
      const std::string& method =
          methods[static_cast<size_t>(cell % num_methods)];
      const std::string ckpt_path = CheckpointPath(config, method, dataset);
      if (std::filesystem::exists(ckpt_path)) {
        done[static_cast<size_t>(cell)] = true;
        progressed = true;
        continue;
      }
      const std::string lease_path = CellLeasePath(config, method, dataset);
      StatusOr<bool> acquired = io::AcquireLease(lease_path, token);
      if (!acquired.ok()) return acquired.status();
      if (!acquired.value()) {
        // Held by another worker. A finished owner removes its lease only
        // after its checkpoint landed, so held + no checkpoint is either a
        // live computation (wait) or a casualty (reclaim).
        const io::LeaseState state =
            io::ProbeLease(lease_path, options.lease_stale_seconds);
        bool reacquired = false;
        if (state == io::LeaseState::kDead) {
          StatusOr<bool> broke = io::BreakLease(lease_path, token);
          if (!broke.ok()) return broke.status();
          if (broke.value()) {
            metrics.GetCounter("grid.shard.leases.stolen").Add();
            acquired = io::AcquireLease(lease_path, token);
            if (!acquired.ok()) return acquired.status();
            reacquired = acquired.value();
          }
        }
        if (!reacquired) {
          if (!std::filesystem::exists(ckpt_path)) {
            metrics.GetCounter("grid.shard.lease_conflicts").Add();
          }
          continue;
        }
        if (!std::filesystem::exists(ckpt_path)) {
          // The dead owner never finished the cell; it is ours to redo.
          metrics.GetCounter("grid.cells.reclaimed").Add();
          std::fprintf(stderr, "[%s] reclaimed dead cell %s / %s\n", label,
                       method.c_str(), dataset.c_str());
        }
      }
      // We hold the lease. Re-check the checkpoint: the previous owner may
      // have died after checkpointing but before releasing.
      if (std::filesystem::exists(ckpt_path)) {
        (void)io::ReleaseLease(lease_path, token);
        done[static_cast<size_t>(cell)] = true;
        progressed = true;
        continue;
      }
      metrics.GetCounter("grid.shard.cells.claimed").Add();
      std::fprintf(stderr, "[%s] claimed %s / %s\n", label, method.c_str(),
                   dataset.c_str());
      const CellOutcome outcome =
          ComputeCell(*grid.harness, method, prepared.Get(di));
      const Status ckpt = WriteCellCheckpoint(config, outcome);
      if (!ckpt.ok()) {
        metrics.GetCounter("grid.checkpoint_write_failures").Add();
        return ckpt;
      }
      metrics.GetCounter("grid.shard.cells.completed").Add();
      const Status released = io::ReleaseLease(lease_path, token);
      if (!released.ok()) {
        // Stolen mid-compute after being (wrongly) declared dead. Harmless:
        // the checkpoint is durable and deterministic, so whatever the thief
        // writes is byte-identical. Count it and move on.
        metrics.GetCounter("grid.shard.lease_release_failures").Add();
        std::fprintf(stderr, "[%s] lease release: %s\n", label,
                     released.ToString().c_str());
      }
      done[static_cast<size_t>(cell)] = true;
      ++completed;
      progressed = true;
    }
    bool all_done = true;
    for (int64_t cell = 0; cell < num_cells; ++cell) {
      if (!done[static_cast<size_t>(cell)]) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    const auto now = std::chrono::steady_clock::now();
    if (progressed) {
      last_progress = now;
      continue;
    }
    const double waited =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            now - last_progress)
            .count();
    if (waited > options.max_wait_seconds) {
      return Status::FailedPrecondition(
          options.worker_label + ": no progress for " +
          std::to_string(waited) + "s waiting on cells held by live workers");
    }
    if (options.should_stop && options.should_stop()) {
      metrics.GetCounter("grid.shard.stopped").Add();
      return Status::FailedPrecondition(options.worker_label +
                                        ": stopped before grid completion");
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.poll_seconds));
  }
  std::fprintf(stderr, "[%s] shard done: computed %lld/%lld cells\n", label,
               static_cast<long long>(completed),
               static_cast<long long>(num_cells));
  return completed;
}

StatusOr<GridResult> MergeGridShards(const BenchConfig& config,
                                     const std::vector<std::string>& methods,
                                     const std::vector<data::DatasetId>& datasets,
                                     const MergeOptions& options) {
  obs::MetricRegistry& metrics = obs::MetricRegistry::Global();
  obs::ScopedTimer merge_span("grid.shard.merge");
  std::filesystem::create_directories(CheckpointDir(config));
  const std::string& token = io::LeaseOwnerToken();

  const int64_t num_methods = static_cast<int64_t>(methods.size());
  const int64_t num_cells = static_cast<int64_t>(datasets.size()) * num_methods;
  std::vector<CellOutcome> outcomes(static_cast<size_t>(num_cells));
  // Built lazily: a merge over a fully covered grid computes nothing and
  // should not pay for harness or store setup.
  std::unique_ptr<GridHarness> grid;
  LazyDatasets prepared(config, datasets);

  for (int64_t cell = 0; cell < num_cells; ++cell) {
    const size_t di = static_cast<size_t>(cell / num_methods);
    const std::string dataset = data::DatasetName(datasets[di]);
    const std::string& method = methods[static_cast<size_t>(cell % num_methods)];
    const std::string ckpt_path = CheckpointPath(config, method, dataset);
    const std::string lease_path = CellLeasePath(config, method, dataset);
    if (std::filesystem::exists(lease_path)) {
      if (std::filesystem::exists(ckpt_path)) {
        // Owner died after checkpointing but before releasing: the work is
        // done, only the marker is orphaned.
        std::remove(lease_path.c_str());
        metrics.GetCounter("grid.shard.merge.leases_cleaned").Add();
      } else {
        const io::LeaseState state =
            io::ProbeLease(lease_path, options.lease_stale_seconds);
        if (state == io::LeaseState::kLive) {
          return Status::FailedPrecondition(
              "cell " + method + " / " + dataset +
              " is still held by a live worker; merge after the workers exit");
        }
        if (state == io::LeaseState::kDead) {
          StatusOr<bool> broke = io::BreakLease(lease_path, token);
          if (!broke.ok()) return broke.status();
          if (broke.value()) {
            metrics.GetCounter("grid.shard.merge.leases_reclaimed").Add();
          }
        }
      }
    }
    CellOutcome& outcome = outcomes[static_cast<size_t>(cell)];
    if (LoadCellCheckpoint(config, method, dataset, &outcome)) {
      metrics.GetCounter("grid.shard.merge.cells_loaded").Add();
      continue;
    }
    metrics.GetCounter("grid.shard.merge.cells_missing").Add();
    if (!options.compute_missing) {
      return Status::NotFound("no checkpoint for cell " + method + " / " +
                              dataset + " in " + CheckpointDir(config));
    }
    if (grid == nullptr) {
      grid = std::make_unique<GridHarness>(MakeGridHarness(config));
    }
    metrics.GetCounter("grid.shard.merge.cells_computed").Add();
    outcome = ComputeCell(*grid->harness, method, prepared.Get(di));
    const Status ckpt = WriteCellCheckpoint(config, outcome);
    if (!ckpt.ok()) {
      metrics.GetCounter("grid.checkpoint_write_failures").Add();
      return ckpt;
    }
  }

  GridResult result;
  for (const CellOutcome& outcome : outcomes) {
    if (outcome.failed) {
      metrics.GetCounter("grid.shard.merge.cells_error").Add();
      result.failures.push_back(outcome.error);
    } else {
      metrics.GetCounter("grid.shard.merge.cells_ok").Add();
      result.rows.insert(result.rows.end(), outcome.rows.begin(),
                         outcome.rows.end());
    }
  }
  // Same writers as RunGrid, so the merged summary (timing-free, %.17g) is
  // byte-identical to a single-process run and the cache CSV serves the
  // figure binaries without recomputation.
  WriteGridSummary(config, methods, datasets, outcomes);
  WriteCache(CachePath(config), result);
  return result;
}

StatusOr<std::vector<data::DatasetId>> ParseDatasetList(const std::string& csv) {
  if (csv.empty()) return data::AllDatasets();
  std::vector<data::DatasetId> out;
  for (const std::string& name : SplitCsvList(csv)) {
    bool found = false;
    for (const data::DatasetId id : data::AllDatasets()) {
      if (name == data::DatasetName(id)) {
        out.push_back(id);
        found = true;
        break;
      }
    }
    if (!found) return Status::InvalidArgument("unknown dataset: " + name);
  }
  if (out.empty()) return Status::InvalidArgument("empty dataset list: " + csv);
  return out;
}

StatusOr<std::vector<std::string>> ParseMethodList(const std::string& csv) {
  if (csv.empty()) return methods::AllMethodNames();
  const std::vector<std::string>& known = methods::AllMethodNames();
  std::vector<std::string> out;
  for (const std::string& name : SplitCsvList(csv)) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown method: " + name);
    }
    out.push_back(name);
  }
  if (out.empty()) return Status::InvalidArgument("empty method list: " + csv);
  return out;
}

GridResult LoadOrComputeGrid(const BenchConfig& config,
                             const std::vector<std::string>& methods,
                             const std::vector<data::DatasetId>& datasets,
                             bool force) {
  const std::string cache_path = CachePath(config);
  if (!force) {
    GridResult cached;
    if (ReadCache(cache_path, &cached) && CacheCovers(cached, methods, datasets)) {
      obs::MetricRegistry::Global().GetCounter("grid.cache_hits").Add();
      std::fprintf(stderr, "[grid] loaded %zu cached rows from %s\n",
                   cached.rows.size(), cache_path.c_str());
      return cached;
    }
  }

  obs::MetricRegistry::Global().GetCounter("grid.cache_misses").Add();
  GridResult result = RunGrid(config, methods, datasets);
  WriteCache(cache_path, result);
  return result;
}

size_t ReportFailures(const GridResult& grid) {
  for (const CellError& failure : grid.failures) {
    std::fprintf(stderr, "[grid] FAILED cell %s / %s: %s\n",
                 failure.method.c_str(), failure.dataset.c_str(),
                 failure.error.c_str());
  }
  return grid.failures.size();
}

std::vector<core::CellResult> ToCells(const std::vector<GridRow>& rows,
                                      const std::vector<std::string>& measures) {
  std::vector<core::CellResult> cells;
  for (const std::string& measure : measures) {
    if (measure == "Time") {
      // Deduplicate by (method, dataset) — fit time repeats on every measure row.
      std::vector<std::pair<std::string, std::string>> seen;
      for (const GridRow& row : rows) {
        const auto key = std::make_pair(row.method, row.dataset);
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
        seen.push_back(key);
        cells.push_back({row.method, row.dataset, "Time", row.fit_seconds, 0.0});
      }
      continue;
    }
    for (const GridRow& row : rows) {
      if (row.measure == measure) {
        cells.push_back({row.method, row.dataset, row.measure, row.mean, row.stddev});
      }
    }
  }
  return cells;
}

namespace {

std::vector<std::string> Distinct(const std::vector<GridRow>& rows,
                                  std::string GridRow::*field) {
  std::vector<std::string> out;
  for (const GridRow& row : rows) {
    if (std::find(out.begin(), out.end(), row.*field) == out.end()) {
      out.push_back(row.*field);
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> DistinctMeasures(const std::vector<GridRow>& rows) {
  return Distinct(rows, &GridRow::measure);
}

std::vector<std::string> DistinctDatasets(const std::vector<GridRow>& rows) {
  return Distinct(rows, &GridRow::dataset);
}

}  // namespace tsg::bench
