#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/thread_pool.h"
#include "io/csv.h"
#include "methods/factory.h"

namespace tsg::bench {

BenchConfig LoadConfig() {
  BenchConfig config;
  if (const char* scale = std::getenv("TSGBENCH_SCALE")) {
    config.scale = std::max(0.05, std::atof(scale));
  }
  if (const char* seed = std::getenv("TSGBENCH_SEED")) {
    config.seed = static_cast<uint64_t>(std::atoll(seed));
  }
  if (const char* out = std::getenv("TSGBENCH_OUT")) {
    config.out_dir = out;
  }
  std::filesystem::create_directories(config.out_dir);
  return config;
}

core::Preprocessed PrepareDataset(data::DatasetId id, const BenchConfig& config) {
  data::SimulatorOptions sim;
  const data::PaperStats paper = data::GetPaperStats(id);
  // Long-sequence datasets cost ~l per training step; cap their window count so the
  // default grid finishes in minutes while the R ordering across datasets survives.
  const double window_cap = (paper.l >= 100 ? 176.0 : 352.0) * config.scale;
  sim.scale = std::min(config.dataset_scale(),
                       window_cap / static_cast<double>(paper.r));
  sim.seed = config.seed;
  const data::RawSeries raw = data::Simulate(id, sim);
  core::PreprocessOptions pre;
  pre.shuffle_seed = config.seed ^ 0x5481;
  return core::Preprocess(raw, pre);
}

namespace {

std::string CachePath(const BenchConfig& config) {
  std::ostringstream os;
  os << config.out_dir << "/grid_cells_s" << config.scale << "_r" << config.seed
     << ".csv";
  return os.str();
}

std::vector<GridRow> ReadCache(const std::string& path) {
  std::vector<GridRow> rows;
  std::ifstream in(path);
  if (!in) return rows;
  std::string line;
  std::getline(in, line);  // Header.
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    GridRow row;
    std::string mean, stddev, fit;
    if (!std::getline(ss, row.method, ',') || !std::getline(ss, row.dataset, ',') ||
        !std::getline(ss, row.measure, ',') || !std::getline(ss, mean, ',') ||
        !std::getline(ss, stddev, ',') || !std::getline(ss, fit, ',')) {
      return {};
    }
    row.mean = std::atof(mean.c_str());
    row.stddev = std::atof(stddev.c_str());
    row.fit_seconds = std::atof(fit.c_str());
    rows.push_back(std::move(row));
  }
  return rows;
}

void WriteCache(const std::string& path, const std::vector<GridRow>& rows) {
  std::vector<std::vector<std::string>> lines;
  lines.push_back({"method", "dataset", "measure", "mean", "stddev", "fit_seconds"});
  for (const GridRow& row : rows) {
    lines.push_back({row.method, row.dataset, row.measure, std::to_string(row.mean),
                     std::to_string(row.stddev), std::to_string(row.fit_seconds)});
  }
  const Status s = io::WriteCsvRows(path, lines);
  if (!s.ok()) std::fprintf(stderr, "cache write failed: %s\n", s.ToString().c_str());
}

bool CacheCovers(const std::vector<GridRow>& rows,
                 const std::vector<std::string>& methods,
                 const std::vector<data::DatasetId>& datasets) {
  for (const std::string& method : methods) {
    for (data::DatasetId id : datasets) {
      const std::string dataset = data::DatasetName(id);
      const bool found = std::any_of(rows.begin(), rows.end(), [&](const GridRow& r) {
        return r.method == method && r.dataset == dataset;
      });
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<GridRow> RunGrid(const BenchConfig& config,
                             const std::vector<std::string>& methods,
                             const std::vector<data::DatasetId>& datasets) {
  core::HarnessOptions options;
  options.fit.epoch_scale = config.epoch_scale();
  options.fit.seed = config.seed;
  options.stochastic_repeats = config.stochastic_repeats();
  options.max_eval_samples = config.max_eval_samples();
  options.embedder.epochs = std::max(4, static_cast<int>(10 * config.scale));
  options.seed = config.seed;
  core::Harness harness(options);

  // Stage 1: simulate + preprocess each dataset (independent and deterministic).
  const auto prepared = base::ParallelMap<core::Preprocessed>(
      static_cast<int64_t>(datasets.size()), 1, [&](int64_t di) {
        core::Preprocessed pre =
            PrepareDataset(datasets[static_cast<size_t>(di)], config);
        std::fprintf(stderr, "[grid] dataset %s: R_train=%lld l=%lld N=%lld\n",
                     pre.train.name().c_str(),
                     static_cast<long long>(pre.train.num_samples()),
                     static_cast<long long>(pre.train.seq_len()),
                     static_cast<long long>(pre.train.num_features()));
        return pre;
      });

  // Stage 2: fit + evaluate every (method, dataset) cell concurrently. Each cell
  // builds its own method instance and seeds its Rng chain from the config alone,
  // so cells never share mutable state (the harness serializes its embedder cache
  // internally) and the row order below matches the serial dataset-major sweep.
  const int64_t num_methods = static_cast<int64_t>(methods.size());
  const int64_t num_cells = static_cast<int64_t>(datasets.size()) * num_methods;
  const auto cell_rows = base::ParallelMap<std::vector<GridRow>>(
      num_cells, 1, [&](int64_t cell) {
        const core::Preprocessed& pre =
            prepared[static_cast<size_t>(cell / num_methods)];
        const std::string& method_name =
            methods[static_cast<size_t>(cell % num_methods)];
        auto method = methods::CreateMethod(method_name);
        TSG_CHECK(method.ok()) << method.status().ToString();
        const core::MethodRunResult result =
            harness.RunMethod(*method.value(), pre.train, pre.test);
        std::vector<GridRow> rows;
        rows.reserve(result.scores.size());
        for (const auto& [measure, summary] : result.scores) {
          rows.push_back({method_name, pre.train.name(), measure, summary.mean,
                          summary.std, result.fit_seconds});
        }
        std::fprintf(stderr, "[grid]   %-12s / %-10s fit %.1fs\n",
                     method_name.c_str(), pre.train.name().c_str(),
                     result.fit_seconds);
        return rows;
      });

  std::vector<GridRow> rows;
  for (const auto& cell : cell_rows) rows.insert(rows.end(), cell.begin(), cell.end());
  return rows;
}

std::vector<GridRow> LoadOrComputeGrid(const BenchConfig& config,
                                       const std::vector<std::string>& methods,
                                       const std::vector<data::DatasetId>& datasets,
                                       bool force) {
  const std::string cache_path = CachePath(config);
  if (!force) {
    std::vector<GridRow> cached = ReadCache(cache_path);
    if (!cached.empty() && CacheCovers(cached, methods, datasets)) {
      std::fprintf(stderr, "[grid] loaded %zu cached rows from %s\n", cached.size(),
                   cache_path.c_str());
      return cached;
    }
  }

  std::vector<GridRow> rows = RunGrid(config, methods, datasets);
  WriteCache(cache_path, rows);
  return rows;
}

std::vector<core::CellResult> ToCells(const std::vector<GridRow>& rows,
                                      const std::vector<std::string>& measures) {
  std::vector<core::CellResult> cells;
  for (const std::string& measure : measures) {
    if (measure == "Time") {
      // Deduplicate by (method, dataset) — fit time repeats on every measure row.
      std::vector<std::pair<std::string, std::string>> seen;
      for (const GridRow& row : rows) {
        const auto key = std::make_pair(row.method, row.dataset);
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
        seen.push_back(key);
        cells.push_back({row.method, row.dataset, "Time", row.fit_seconds, 0.0});
      }
      continue;
    }
    for (const GridRow& row : rows) {
      if (row.measure == measure) {
        cells.push_back({row.method, row.dataset, row.measure, row.mean, row.stddev});
      }
    }
  }
  return cells;
}

namespace {

std::vector<std::string> Distinct(const std::vector<GridRow>& rows,
                                  std::string GridRow::*field) {
  std::vector<std::string> out;
  for (const GridRow& row : rows) {
    if (std::find(out.begin(), out.end(), row.*field) == out.end()) {
      out.push_back(row.*field);
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> DistinctMeasures(const std::vector<GridRow>& rows) {
  return Distinct(rows, &GridRow::measure);
}

std::vector<std::string> DistinctDatasets(const std::vector<GridRow>& rows) {
  return Distinct(rows, &GridRow::dataset);
}

}  // namespace tsg::bench
