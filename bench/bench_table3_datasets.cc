// Reproduces Table 3: statistics of the ten benchmark datasets. Prints the paper's
// (R, l, N, domain) values alongside the values measured from this repository's
// simulated datasets after the §4.1 preprocessing pipeline, at the current scale.

#include <cstdio>

#include "bench_util.h"
#include "io/table.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_table3_datasets [--metrics_out=<path>]")) {
    return 2;
  }
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  std::printf("=== Table 3: dataset statistics (scale=%.2f) ===\n\n", config.scale);

  tsg::io::Table table({"Dataset", "R(paper)", "R(sim)", "l(paper)", "l(sim)",
                        "N(paper)", "N(sim)", "Domain", "value mean", "value std"});
  for (tsg::data::DatasetId id : tsg::data::AllDatasets()) {
    const tsg::data::PaperStats paper = tsg::data::GetPaperStats(id);
    const tsg::core::Preprocessed pre = tsg::bench::PrepareDataset(id, config);
    const int64_t r_sim = pre.train.num_samples() + pre.test.num_samples();
    const auto values = pre.train.AllValues();
    const auto moments = tsg::stats::ComputeMoments(values);
    table.AddRow({tsg::data::DatasetName(id), std::to_string(paper.r),
                  std::to_string(r_sim), std::to_string(paper.l),
                  std::to_string(pre.train.seq_len()), std::to_string(paper.n),
                  std::to_string(pre.train.num_features()), paper.domain,
                  tsg::io::Table::Num(moments.mean, 3),
                  tsg::io::Table::Num(moments.stddev, 3)});
  }
  table.Print();
  std::printf("\nSimulated R is the paper's R scaled by %.3f (clamped to >= 128);\n"
              "l and N match Table 3 exactly. TSGBENCH_SCALE=50 reproduces full R.\n",
              config.dataset_scale());
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
