// CI smoke driver: runs a tiny 2-method x 2-dataset bench grid end to end at a
// minimal training budget, and can kill itself after a fixed number of completed
// fits (TSG_SMOKE_KILL_AFTER=N) to exercise the checkpoint/resume path exactly as
// an interrupted batch job would. scripts/ci_smoke_grid.sh drives the full
// kill -> resume -> byte-compare protocol and the --metrics_out determinism check.
//
// --shard runs the same grid as one sharded-grid worker (lease-claimed cells,
// DESIGN.md §10) and --merge as the strict supervisor, so
// scripts/ci_sharded_grid.sh can drive a multi-worker kill/reclaim/merge cycle
// with the identical kill instrumentation: a worker killed via
// TSG_SMOKE_KILL_AFTER dies between claiming a cell's lease and checkpointing
// it, leaving exactly the dangling-lease state the reclaim path exists for.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/fnv.h"
#include "bench_util.h"
#include "core/method.h"
#include "data/simulators.h"
#include "methods/factory.h"

namespace tsg::bench {
namespace {

/// Completed Fit calls across all smoke methods. With TSG_THREADS=1 the grid
/// sweeps cells serially, so the kill point — and therefore the set of
/// checkpoints left on disk — is deterministic.
std::atomic<int> g_fits_done{0};

int KillAfter() {
  static const int kill_after = [] {
    const char* env = std::getenv("TSG_SMOKE_KILL_AFTER");
    return env == nullptr ? 0 : std::atoi(env);
  }();
  return kill_after;
}

/// Simulates a hard kill (OOM, preemption) between grid cells: no atexit
/// handlers, no flushing beyond what already hit the disk atomically.
void MaybeKillBeforeFit() {
  const int kill_after = KillAfter();
  if (kill_after > 0 && g_fits_done.load(std::memory_order_relaxed) >= kill_after) {
    std::fprintf(stderr, "[smoke] simulating kill after %d completed fits\n",
                 kill_after);
    std::_Exit(3);
  }
}

/// Delegates to a real built-in method under a distinct registry name ("SmokeVAE"
/// wrapping "TimeVAE"): registering the wrapper under the built-in's own name
/// would shadow it and make the delegating CreateMethod call recurse forever.
class SmokeMethod : public core::TsgMethod {
 public:
  SmokeMethod(std::string name, std::unique_ptr<core::TsgMethod> inner)
      : name_(std::move(name)), inner_(std::move(inner)) {}

  Status Fit(const core::Dataset& train, const core::FitOptions& options) override {
    MaybeKillBeforeFit();
    const Status s = inner_->Fit(train, options);
    if (s.ok()) g_fits_done.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  std::vector<linalg::Matrix> Generate(int64_t count, Rng& rng) const override {
    return inner_->Generate(count, rng);
  }
  std::vector<std::vector<linalg::Matrix>> GenerateBatch(
      const std::vector<core::GenRequest>& requests) const override {
    return inner_->GenerateBatch(requests);
  }
  StatusOr<core::MethodSnapshot> Snapshot() const override {
    return inner_->Snapshot();
  }
  Status Restore(const core::MethodSnapshot& snapshot) override {
    return inner_->Restore(snapshot);
  }
  uint64_t HyperparameterDigest() const override {
    // Mix the wrapper name in so SmokeVAE and TimeVAE artifacts never collide
    // even though the fitted state is identical.
    return base::Fnv64()
        .String(name_)
        .U64(inner_->HyperparameterDigest())
        .digest();
  }
  std::string name() const override { return name_; }

 private:
  const std::string name_;
  std::unique_ptr<core::TsgMethod> inner_;
};

void RegisterSmokeMethod(const std::string& name, const std::string& inner) {
  methods::RegisterMethod(name, [name, inner] {
    auto method = methods::CreateMethod(inner);
    TSG_CHECK(method.ok()) << method.status().ToString();
    return std::make_unique<SmokeMethod>(name, std::move(method).value());
  });
}

}  // namespace
}  // namespace tsg::bench

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  const bool shard_mode = tsg::bench::ConsumeFlag(&argc, argv, "shard");
  const bool merge_mode = tsg::bench::ConsumeFlag(&argc, argv, "merge");
  if (!tsg::bench::RequireNoUnknownFlags(
          argc, argv,
          "bench_smoke_grid [--shard | --merge] [--metrics_out=<path>]")) {
    return 2;
  }
  tsg::bench::RegisterSmokeMethod("SmokeVAE", "TimeVAE");
  tsg::bench::RegisterSmokeMethod("SmokeLS4", "LS4");

  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  const std::vector<std::string> methods = {"SmokeVAE", "SmokeLS4"};
  const std::vector<tsg::data::DatasetId> datasets = {tsg::data::DatasetId::kDlg,
                                                      tsg::data::DatasetId::kStock};

  if (shard_mode) {
    tsg::bench::ShardOptions options;
    options.worker_label = "smoke-shard";
    options.max_wait_seconds = 120.0;  // A hung peer fails the CI job fast.
    const auto completed =
        tsg::bench::RunGridShard(config, methods, datasets, options);
    if (!completed.ok()) {
      std::fprintf(stderr, "[smoke] shard failed: %s\n",
                   completed.status().ToString().c_str());
      tsg::bench::WriteMetricsSnapshot();
      return 1;
    }
    std::printf("[smoke] shard complete: computed %lld cells\n",
                static_cast<long long>(completed.value()));
    tsg::bench::WriteMetricsSnapshot();
    return 0;
  }

  if (merge_mode) {
    tsg::bench::MergeOptions options;
    // Strict: the workers must have covered the whole grid — the supervisor
    // merging CI artifacts should never silently train cells itself.
    options.compute_missing = false;
    const auto merged =
        tsg::bench::MergeGridShards(config, methods, datasets, options);
    if (!merged.ok()) {
      std::fprintf(stderr, "[smoke] merge failed: %s\n",
                   merged.status().ToString().c_str());
      tsg::bench::WriteMetricsSnapshot();
      return 1;
    }
    const size_t failures = tsg::bench::ReportFailures(merged.value());
    std::printf("[smoke] merge complete: %zu rows, %zu failed cells\n",
                merged.value().rows.size(), failures);
    tsg::bench::WriteMetricsSnapshot();
    return failures == 0 ? 0 : 1;
  }

  const auto grid = tsg::bench::RunGrid(config, methods, datasets);
  const size_t failures = tsg::bench::ReportFailures(grid);
  std::printf("[smoke] grid complete: %zu rows, %zu failed cells\n",
              grid.rows.size(), failures);
  tsg::bench::WriteMetricsSnapshot();
  return failures == 0 ? 0 : 1;
}
