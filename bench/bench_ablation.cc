// Ablation benches for the design choices DESIGN.md calls out:
//   A. ED/DTW pairing rule — index pairing (ours) vs nearest-neighbour pairing.
//      Index pairing is what makes Table 4's "identical input" rows exactly zero;
//      nearest-neighbour pairing under-reports distance and rewards memorization.
//   B. Normalization before vs after windowing (the paper's L2 discrepancy note).
//   C. ACF-chosen window length vs the fixed 24-step window the paper critiques.
//   D. DS variance vs number of evaluation repeats (the §6.3 robustness concern).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/dataset.h"
#include "core/measures.h"
#include "core/preprocess.h"
#include "data/simulators.h"
#include "distance/distance.h"
#include "io/table.h"
#include "signal/acf.h"
#include "stats/descriptive.h"

namespace {

using tsg::core::Dataset;

double NearestNeighborEd(const Dataset& real, const Dataset& gen) {
  double total = 0.0;
  for (int64_t i = 0; i < gen.num_samples(); ++i) {
    double best = 1e300;
    for (int64_t j = 0; j < real.num_samples(); ++j) {
      best = std::min(best,
                      tsg::distance::EuclideanDistance(gen.sample(i),
                                                       real.sample(j)));
    }
    total += best;
  }
  return total / static_cast<double>(gen.num_samples());
}

void AblationPairing(const tsg::bench::BenchConfig& config) {
  std::printf("\n--- Ablation A: ED pairing rule ---\n");
  const Dataset real("sine", tsg::data::SineBenchmark(96, 24, 5, config.seed));
  const Dataset resampled("sine",
                          tsg::data::SineBenchmark(96, 24, 5, config.seed + 1));
  // A "memorizing" generator: returns the first real sample 96 times.
  Dataset memorizer;
  for (int i = 0; i < 96; ++i) memorizer.Add(real.sample(0));

  tsg::core::MeasureContext ctx;
  ctx.real = &real;
  ctx.real_test = &real;
  tsg::core::EuclideanDistanceMeasure ed;

  tsg::io::Table table({"Generated set", "ED (index-paired, ours)", "ED (NN-paired)"});
  for (const auto& [name, gen] :
       std::vector<std::pair<std::string, const Dataset*>>{
           {"identical", &real}, {"resampled", &resampled},
           {"memorizer", &memorizer}}) {
    ctx.generated = gen;
    table.AddRow({name, tsg::io::Table::Num(ed.Evaluate(ctx).value(), 3),
                  tsg::io::Table::Num(NearestNeighborEd(real, *gen), 3)});
  }
  table.Print();
  std::printf("NN pairing scores the single-sample memorizer nearly perfect (~0) —\n"
              "index pairing penalizes it; identical input is 0 under both.\n");
}

void AblationNormalization(const tsg::bench::BenchConfig& config) {
  std::printf("\n--- Ablation B: normalize before vs after windowing ---\n");
  tsg::data::SimulatorOptions sim;
  sim.scale = config.dataset_scale();
  sim.seed = config.seed;
  const tsg::data::RawSeries raw = tsg::data::Simulate(tsg::data::DatasetId::kStock,
                                                       sim);
  tsg::core::PreprocessOptions before, after;
  before.normalize_before_windowing = true;
  after.normalize_before_windowing = false;
  const auto pre_before = tsg::core::Preprocess(raw, before);
  const auto pre_after = tsg::core::Preprocess(raw, after);
  const auto mb = tsg::stats::ComputeMoments(pre_before.train.AllValues());
  const auto ma = tsg::stats::ComputeMoments(pre_after.train.AllValues());
  tsg::io::Table table({"Pipeline", "mean", "std", "skewness"});
  table.AddRow({"normalize-then-window", tsg::io::Table::Num(mb.mean, 4),
                tsg::io::Table::Num(mb.stddev, 4), tsg::io::Table::Num(mb.skewness,
                                                                       4)});
  table.AddRow({"window-then-normalize", tsg::io::Table::Num(ma.mean, 4),
                tsg::io::Table::Num(ma.stddev, 4), tsg::io::Table::Num(ma.skewness,
                                                                       4)});
  table.Print();
  std::printf("Identical here by construction (same global min/max); the ordering\n"
              "matters once splits are normalized separately — TSGBench pins one\n"
              "order so results are comparable across papers.\n");
}

void AblationWindowLength(const tsg::bench::BenchConfig& config) {
  std::printf("\n--- Ablation C: ACF-chosen window vs fixed 24 ---\n");
  // A series with a 40-step period: the fixed 24-step window cannot contain one
  // full period; the ACF rule recovers it.
  tsg::linalg::Matrix series(800, 1);
  tsg::Rng rng(config.seed);
  for (int64_t t = 0; t < 800; ++t) {
    series(t, 0) = std::sin(2.0 * M_PI * t / 40.0) + 0.1 * rng.Normal();
  }
  std::vector<double> col(800);
  for (int64_t t = 0; t < 800; ++t) col[static_cast<size_t>(t)] = series(t, 0);
  const int64_t acf_l = tsg::signal::SuggestWindowLength(col, 8, 128);

  auto coverage = [&](int64_t l) {
    // Fraction of a full period a window covers (capped at 1).
    return std::min(1.0, static_cast<double>(l) / 40.0);
  };
  tsg::io::Table table({"Rule", "window l", "period coverage"});
  table.AddRow({"fixed 24 (prior practice)", "24", tsg::io::Table::Num(coverage(24),
                                                                       2)});
  table.AddRow({"ACF-chosen (TSGBench)", std::to_string(acf_l),
                tsg::io::Table::Num(coverage(acf_l), 2)});
  table.Print();
}

void AblationDtwStrategy(const tsg::bench::BenchConfig& config) {
  std::printf("\n--- Ablation E: dependent vs independent multivariate DTW ---\n");
  // Per the Shokoohi-Yekta et al. study the paper cites, the better strategy is
  // data-dependent: dimensions warping together favour dependent DTW; dimensions
  // drifting separately favour independent DTW.
  const Dataset real("sine", tsg::data::SineBenchmark(48, 24, 4, config.seed));
  const Dataset gen("sine", tsg::data::SineBenchmark(48, 24, 4, config.seed + 1));
  tsg::core::MeasureContext ctx;
  ctx.real = &real;
  ctx.generated = &gen;
  const double dep = tsg::core::DtwDistanceMeasure().Evaluate(ctx).value();
  const double indep =
      tsg::core::DtwDistanceMeasure(-1,
                                    tsg::core::DtwDistanceMeasure::Strategy::
                                        kIndependent)
          .Evaluate(ctx)
          .value();
  tsg::io::Table table({"Strategy", "mean DTW"});
  table.AddRow({"dependent (TSGBench default)", tsg::io::Table::Num(dep, 3)});
  table.AddRow({"independent", tsg::io::Table::Num(indep, 3)});
  table.Print();
  std::printf("Independent never exceeds dependent (larger alignment family); the\n"
              "benchmark defaults to dependent DTW as the stricter comparison.\n");
}

void AblationDsVariance(const tsg::bench::BenchConfig& config) {
  std::printf("\n--- Ablation D: DS variance vs repeats ---\n");
  const Dataset real("sine", tsg::data::SineBenchmark(64, 24, 5, config.seed));
  const Dataset gen("sine", tsg::data::SineBenchmark(64, 24, 5, config.seed + 1));
  tsg::core::MeasureContext ctx;
  ctx.real = &real;
  ctx.real_test = &real;
  ctx.generated = &gen;

  tsg::core::DiscriminativeScore ds;
  tsg::core::MarginalDistributionDifference mdd;
  tsg::io::Table table({"Repeats", "DS mean", "DS std", "MDD std (deterministic)"});
  for (int repeats : {2, 4, 8}) {
    std::vector<double> ds_values, mdd_values;
    for (int r = 0; r < repeats; ++r) {
      ctx.seed = config.seed + 17 * static_cast<uint64_t>(r + 1);
      ds_values.push_back(ds.Evaluate(ctx).value());
      mdd_values.push_back(mdd.Evaluate(ctx).value());
    }
    const auto ds_summary = tsg::stats::Summarize(ds_values);
    const auto mdd_summary = tsg::stats::Summarize(mdd_values);
    table.AddRow({std::to_string(repeats), tsg::io::Table::Num(ds_summary.mean, 4),
                  tsg::io::Table::Num(ds_summary.std, 4),
                  tsg::io::Table::Num(mdd_summary.std, 6)});
  }
  table.Print();
  std::printf("DS carries training noise at every repeat count; the deterministic\n"
              "measures have literally zero spread — the paper's §6.3 point.\n");
}

}  // namespace

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_ablation [--metrics_out=<path>]")) {
    return 2;
  }
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  std::printf("=== Ablation benches (design choices) ===\n");
  AblationPairing(config);
  AblationNormalization(config);
  AblationWindowLength(config);
  AblationDtwStrategy(config);
  AblationDsVariance(config);
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
