// Reproduces Figure 1: method rankings (1 = best) across the ten evaluation
// measures (left panel: per measure, averaged over datasets) and across the ten
// datasets (right panel: per dataset, averaged over measures). Reuses the Figure 5
// grid cache when present.

#include <cstdio>

#include "bench_util.h"
#include "core/ranking.h"
#include "io/csv.h"
#include "io/table.h"
#include "methods/factory.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_fig1_ranking [--metrics_out=<path>]")) {
    return 2;
  }
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  const auto& methods = tsg::methods::AllMethodNames();
  const auto grid =
      tsg::bench::LoadOrComputeGrid(config, methods, tsg::data::AllDatasets());
  tsg::bench::ReportFailures(grid);
  const auto& rows = grid.rows;
  const auto measures = tsg::bench::DistinctMeasures(rows);
  const auto datasets = tsg::bench::DistinctDatasets(rows);

  tsg::core::RankingAnalysis analysis(tsg::bench::ToCells(rows, measures), methods,
                                      datasets, measures);

  std::printf("=== Figure 1 (left): average method rank per measure ===\n\n");
  {
    std::vector<std::string> header = {"Measure"};
    for (const auto& m : methods) header.push_back(m);
    tsg::io::Table table(header);
    const tsg::linalg::Matrix ranks = analysis.RankPerMeasure();
    for (size_t i = 0; i < measures.size(); ++i) {
      std::vector<std::string> cells = {measures[i]};
      for (size_t j = 0; j < methods.size(); ++j) {
        cells.push_back(tsg::io::Table::Num(ranks(static_cast<int64_t>(i),
                                                  static_cast<int64_t>(j)),
                                            2));
      }
      table.AddRow(cells);
    }
    table.Print();
    tsg::io::WriteCsv(config.out_dir + "/fig1_rank_per_measure.csv", methods, ranks)
        .ok();
  }

  std::printf("\n=== Figure 1 (right): average method rank per dataset ===\n\n");
  {
    std::vector<std::string> header = {"Dataset"};
    for (const auto& m : methods) header.push_back(m);
    tsg::io::Table table(header);
    const tsg::linalg::Matrix ranks = analysis.RankPerDataset();
    for (size_t i = 0; i < datasets.size(); ++i) {
      std::vector<std::string> cells = {datasets[i]};
      for (size_t j = 0; j < methods.size(); ++j) {
        cells.push_back(tsg::io::Table::Num(ranks(static_cast<int64_t>(i),
                                                  static_cast<int64_t>(j)),
                                            2));
      }
      table.AddRow(cells);
    }
    table.Print();
    tsg::io::WriteCsv(config.out_dir + "/fig1_rank_per_dataset.csv", methods, ranks)
        .ok();
  }

  std::printf(
      "\nExpected shape (paper): no single method dominates every row, but\n"
      "TimeVQVAE, TimeVAE, COSCI-GAN, RTSGAN and LS4 carry the best (lowest)\n"
      "ranks across both panels while RGAN carries the worst.\n");
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
