#ifndef TSG_BENCH_BENCH_UTIL_H_
#define TSG_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/preprocess.h"
#include "core/ranking.h"
#include "data/simulators.h"

namespace tsg::bench {

/// Global knobs shared by every bench binary. Defaults give a laptop-scale run that
/// finishes in minutes; TSGBENCH_SCALE=<x> multiplies the budget (dataset size,
/// training epochs, evaluation repeats) toward paper fidelity.
struct BenchConfig {
  double scale = 1.0;          ///< TSGBENCH_SCALE multiplier.
  uint64_t seed = 42;          ///< TSGBENCH_SEED.
  std::string out_dir = "bench_out";  ///< TSGBENCH_OUT.
  /// TSGBENCH_STORE_DIR: trained-model artifact store directory. When set, grid
  /// cells consult the store before fitting (hit -> restore, zero training) and
  /// publish their fitted model after training, so a second run against the
  /// same store retrains nothing. Empty = store disabled.
  std::string store_dir;

  double dataset_scale() const { return 0.02 * scale; }
  double epoch_scale() const { return 0.2 * scale; }
  int stochastic_repeats() const { return scale >= 2.0 ? 5 : 2; }
  int64_t max_eval_samples() const { return scale >= 2.0 ? 256 : 96; }
};

/// Reads TSGBENCH_SCALE / TSGBENCH_SEED / TSGBENCH_OUT / TSGBENCH_STORE_DIR and
/// ensures out_dir exists.
BenchConfig LoadConfig();

/// Strips bench-harness flags from argv before any other argument parsing (call
/// first in main, before benchmark::Initialize for Google Benchmark binaries).
/// Currently recognizes --metrics_out=<path>, which arms WriteMetricsSnapshot().
void ParseBenchFlags(int* argc, char** argv);

/// Path given via --metrics_out, or empty when the flag was not passed.
const std::string& MetricsOutPath();

/// Writes the process-wide obs::MetricRegistry snapshot to the --metrics_out
/// path (atomic write). No-op without the flag. Bench mains call this last so
/// the snapshot covers the whole run.
void WriteMetricsSnapshot();

/// One fitted-and-evaluated grid cell (long format, one row per measure) plus the
/// training time (M8).
struct GridRow {
  std::string method;
  std::string dataset;
  std::string measure;
  double mean = 0.0;
  double stddev = 0.0;
  double fit_seconds = 0.0;
};

/// A (method, dataset) cell that failed recoverably — a diverged fit, non-finite
/// generated data, or a measure error. The grid records it and keeps going.
struct CellError {
  std::string method;
  std::string dataset;
  std::string error;  ///< Status string with method/phase/epoch context.
};

/// The outcome of a grid run: score rows for the cells that succeeded (dataset-
/// major sweep order) plus an error record per failed cell (same order).
struct GridResult {
  std::vector<GridRow> rows;
  std::vector<CellError> failures;
};

/// Preprocesses one simulated dataset under the benchmark defaults.
core::Preprocessed PrepareDataset(data::DatasetId id, const BenchConfig& config);

/// Directory holding one atomically written checkpoint file per completed
/// (method, dataset) cell, keyed by the config. A killed grid run resumes from
/// these: completed cells are loaded instead of recomputed, and because every
/// cell seeds its Rng chain from the config alone, the resumed run's outputs are
/// byte-identical to an uninterrupted run.
std::string CheckpointDir(const BenchConfig& config);

/// Path of the deterministic JSON summary artifact written after every grid run:
/// per-cell status, scores for completed cells, and error records for failed
/// ones. Wall-clock timings are deliberately excluded (they live in the CSV
/// cache) so the file is byte-identical across reruns and kill/resume cycles.
std::string GridSummaryPath(const BenchConfig& config);

/// Computes the benchmarking grid: every (method, dataset) cell is fitted and
/// evaluated as an independent task on the global thread pool (TSG_THREADS-many at
/// once), and rows are assembled in the serial dataset-major order. Every cell
/// seeds its own Rng chain from the config, so the rows are bit-identical to a
/// single-threaded run. A failing cell (diverged fit, NaN loss, measure error)
/// becomes a CellError while the rest of the grid completes. Completed cells are
/// checkpointed under CheckpointDir() and skipped on the next run; the JSON
/// summary at GridSummaryPath() is (re)written atomically at the end.
GridResult RunGrid(const BenchConfig& config,
                   const std::vector<std::string>& methods,
                   const std::vector<data::DatasetId>& datasets);

/// Runs the full benchmarking grid (methods x datasets x measure suite) and returns
/// long-format rows plus failures. Results are cached as CSV in
/// <out_dir>/grid_cells_*.csv keyed by the config; reruns with the same config load
/// the cache so the Figure 1/5/8 binaries do not recompute each other's work. Set
/// `force` to recompute.
GridResult LoadOrComputeGrid(const BenchConfig& config,
                             const std::vector<std::string>& methods,
                             const std::vector<data::DatasetId>& datasets,
                             bool force = false);

/// Prints any failed cells to stderr; returns the number of failures. Bench mains
/// call this so partial grids are visible without aborting the figure.
size_t ReportFailures(const GridResult& grid);

/// Converts grid rows to the RankingAnalysis cell format for a set of measures
/// (training time is appended as the synthetic measure "Time" when requested).
std::vector<core::CellResult> ToCells(const std::vector<GridRow>& rows,
                                      const std::vector<std::string>& measures);

/// Distinct values preserving first-seen order.
std::vector<std::string> DistinctMeasures(const std::vector<GridRow>& rows);
std::vector<std::string> DistinctDatasets(const std::vector<GridRow>& rows);

}  // namespace tsg::bench

#endif  // TSG_BENCH_BENCH_UTIL_H_
