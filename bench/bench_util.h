#ifndef TSG_BENCH_BENCH_UTIL_H_
#define TSG_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/harness.h"
#include "core/preprocess.h"
#include "core/ranking.h"
#include "data/simulators.h"

namespace tsg::bench {

/// Global knobs shared by every bench binary. Defaults give a laptop-scale run that
/// finishes in minutes; TSGBENCH_SCALE=<x> multiplies the budget (dataset size,
/// training epochs, evaluation repeats) toward paper fidelity.
struct BenchConfig {
  double scale = 1.0;          ///< TSGBENCH_SCALE multiplier.
  uint64_t seed = 42;          ///< TSGBENCH_SEED.
  std::string out_dir = "bench_out";  ///< TSGBENCH_OUT.
  /// TSGBENCH_STORE_DIR: trained-model artifact store directory. When set, grid
  /// cells consult the store before fitting (hit -> restore, zero training) and
  /// publish their fitted model after training, so a second run against the
  /// same store retrains nothing. Empty = store disabled.
  std::string store_dir;

  double dataset_scale() const { return 0.02 * scale; }
  double epoch_scale() const { return 0.2 * scale; }
  int stochastic_repeats() const { return scale >= 2.0 ? 5 : 2; }
  int64_t max_eval_samples() const { return scale >= 2.0 ? 256 : 96; }
};

/// Reads TSGBENCH_SCALE / TSGBENCH_SEED / TSGBENCH_OUT / TSGBENCH_STORE_DIR and
/// ensures out_dir exists.
BenchConfig LoadConfig();

/// Strips bench-harness flags from argv before any other argument parsing (call
/// first in main, before benchmark::Initialize for Google Benchmark binaries).
/// Currently recognizes --metrics_out=<path>, which arms WriteMetricsSnapshot().
void ParseBenchFlags(int* argc, char** argv);

/// Terminal flag-parsing step: call after every Consume* call has stripped the
/// flags the binary understands. Any `--name[=value]` argument still present is
/// unknown — the function prints "unknown flag" plus `usage` to stderr and
/// returns false so main can exit 2, instead of the old behavior of silently
/// ignoring a mistyped flag and running the full (possibly hours-long) job
/// with its default. Non-flag positional arguments are left alone.
bool RequireNoUnknownFlags(int argc, char** argv, const std::string& usage);

/// Removes a bare `--<name>` flag from argv; returns true when it was present.
bool ConsumeFlag(int* argc, char** argv, const std::string& name);

/// Removes a `--<name>=<value>` flag from argv and stores the value; returns
/// false (argv untouched, *value unchanged) when the flag is absent.
bool ConsumeFlagValue(int* argc, char** argv, const std::string& name,
                      std::string* value);

/// Path given via --metrics_out, or empty when the flag was not passed.
const std::string& MetricsOutPath();

/// Writes the process-wide obs::MetricRegistry snapshot to the --metrics_out
/// path (atomic write). No-op without the flag. Bench mains call this last so
/// the snapshot covers the whole run.
void WriteMetricsSnapshot();

/// One fitted-and-evaluated grid cell (long format, one row per measure) plus the
/// training time (M8).
struct GridRow {
  std::string method;
  std::string dataset;
  std::string measure;
  double mean = 0.0;
  double stddev = 0.0;
  double fit_seconds = 0.0;
};

/// A (method, dataset) cell that failed recoverably — a diverged fit, non-finite
/// generated data, or a measure error. The grid records it and keeps going.
struct CellError {
  std::string method;
  std::string dataset;
  std::string error;  ///< Status string with method/phase/epoch context.
};

/// The outcome of a grid run: score rows for the cells that succeeded (dataset-
/// major sweep order) plus an error record per failed cell (same order).
struct GridResult {
  std::vector<GridRow> rows;
  std::vector<CellError> failures;
};

/// Preprocesses one simulated dataset under the benchmark defaults.
core::Preprocessed PrepareDataset(data::DatasetId id, const BenchConfig& config);

/// The harness configuration every grid execution mode derives from `config`
/// (options.store left null — callers attach their own). Exported so out-of-
/// process servers (the tsgd daemon) evaluate cells with exactly the options a
/// batch grid would, which is what makes their results byte-identical.
core::HarnessOptions GridHarnessOptions(const BenchConfig& config);

/// Directory holding one atomically written checkpoint file per completed
/// (method, dataset) cell, keyed by the config. A killed grid run resumes from
/// these: completed cells are loaded instead of recomputed, and because every
/// cell seeds its Rng chain from the config alone, the resumed run's outputs are
/// byte-identical to an uninterrupted run.
std::string CheckpointDir(const BenchConfig& config);

/// Path of the deterministic JSON summary artifact written after every grid run:
/// per-cell status, scores for completed cells, and error records for failed
/// ones. Wall-clock timings are deliberately excluded (they live in the CSV
/// cache) so the file is byte-identical across reruns and kill/resume cycles.
std::string GridSummaryPath(const BenchConfig& config);

/// Computes the benchmarking grid: every (method, dataset) cell is fitted and
/// evaluated as an independent task on the global thread pool (TSG_THREADS-many at
/// once), and rows are assembled in the serial dataset-major order. Every cell
/// seeds its own Rng chain from the config, so the rows are bit-identical to a
/// single-threaded run. A failing cell (diverged fit, NaN loss, measure error)
/// becomes a CellError while the rest of the grid completes. Completed cells are
/// checkpointed under CheckpointDir() and skipped on the next run; the JSON
/// summary at GridSummaryPath() is (re)written atomically at the end.
GridResult RunGrid(const BenchConfig& config,
                   const std::vector<std::string>& methods,
                   const std::vector<data::DatasetId>& datasets);

/// One sharded-grid worker process (DESIGN.md §10). Workers coordinate only
/// through files in CheckpointDir(config): a cell is claimed by atomically
/// creating `<checkpoint>.lease` (io::AcquireLease), computed through the same
/// store-aware harness path as RunGrid, checkpointed atomically, and released.
/// A worker that dies mid-cell leaves a lease that any survivor detects as dead
/// (same-host pid probe, or the `lease_stale_seconds` TTL) and reclaims via
/// io::BreakLease — exactly one survivor wins the steal. Because every cell is
/// a pure function of the config, it does not matter which worker computes a
/// cell: the checkpoint bytes are identical either way.
struct ShardOptions {
  std::string worker_label = "shard";  ///< Log / trace prefix only.
  /// A held lease at least this old is reclaimable even when its owner cannot
  /// be probed (foreign host). Same-host dead owners are reclaimed immediately.
  double lease_stale_seconds = 300.0;
  /// Give up after this long with pending cells but no progress anywhere (a
  /// hung live owner would otherwise block the worker forever).
  double max_wait_seconds = 600.0;
  double poll_seconds = 0.05;  ///< Sleep between sweeps while waiting.
  /// Cooperative stop hook for long-running hosts (the tsgd daemon's drain and
  /// cancel paths). Polled between cells, never mid-cell: when it returns true
  /// the worker stops claiming cells and returns FailedPrecondition. Cells
  /// already checkpointed stay durable, so a later run of the same config
  /// resumes from them byte-identically. Null = never stop.
  std::function<bool()> should_stop;
};

/// Sweeps the (method, dataset) grid claiming pending cells per ShardOptions
/// until every cell has a checkpoint, then returns how many cells this worker
/// computed itself. FailedPrecondition on a no-progress timeout.
StatusOr<int64_t> RunGridShard(const BenchConfig& config,
                               const std::vector<std::string>& methods,
                               const std::vector<data::DatasetId>& datasets,
                               const ShardOptions& options);

struct MergeOptions {
  /// When true, the supervisor computes any cell no worker completed (after
  /// reclaiming its lease). When false a missing checkpoint is an error — the
  /// strict mode CI uses to prove the workers really covered the grid.
  bool compute_missing = true;
  double lease_stale_seconds = 300.0;  ///< Same reclaim TTL as ShardOptions.
};

/// Supervisor pass, run after the workers exit: reclaims leftover leases
/// (stale, or orphaned next to a finished checkpoint), loads every cell's
/// checkpoint, computes stragglers when allowed, and writes the grid summary
/// and cache CSV. The summary is byte-identical to a single-process RunGrid of
/// the same config — checkpoints round-trip doubles through %.17g, so merged
/// outcomes equal computed outcomes bit for bit. Fails with NotFound (strict
/// mode, missing cell) or FailedPrecondition (a live worker still holds a
/// lease).
StatusOr<GridResult> MergeGridShards(const BenchConfig& config,
                                     const std::vector<std::string>& methods,
                                     const std::vector<data::DatasetId>& datasets,
                                     const MergeOptions& options);

/// Parses a comma-separated dataset-name list ("dlg,stock") against
/// data::DatasetName. An empty string means data::AllDatasets().
StatusOr<std::vector<data::DatasetId>> ParseDatasetList(const std::string& csv);

/// Parses a comma-separated method list against methods::AllMethodNames().
/// An empty string means every registered paper method.
StatusOr<std::vector<std::string>> ParseMethodList(const std::string& csv);

/// Runs the full benchmarking grid (methods x datasets x measure suite) and returns
/// long-format rows plus failures. Results are cached as CSV in
/// <out_dir>/grid_cells_*.csv keyed by the config; reruns with the same config load
/// the cache so the Figure 1/5/8 binaries do not recompute each other's work. Set
/// `force` to recompute.
GridResult LoadOrComputeGrid(const BenchConfig& config,
                             const std::vector<std::string>& methods,
                             const std::vector<data::DatasetId>& datasets,
                             bool force = false);

/// Prints any failed cells to stderr; returns the number of failures. Bench mains
/// call this so partial grids are visible without aborting the figure.
size_t ReportFailures(const GridResult& grid);

/// Converts grid rows to the RankingAnalysis cell format for a set of measures
/// (training time is appended as the synthetic measure "Time" when requested).
std::vector<core::CellResult> ToCells(const std::vector<GridRow>& rows,
                                      const std::vector<std::string>& measures);

/// Distinct values preserving first-seen order.
std::vector<std::string> DistinctMeasures(const std::vector<GridRow>& rows);
std::vector<std::string> DistinctDatasets(const std::vector<GridRow>& rows);

}  // namespace tsg::bench

#endif  // TSG_BENCH_BENCH_UTIL_H_
