#ifndef TSG_BENCH_BENCH_UTIL_H_
#define TSG_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/preprocess.h"
#include "core/ranking.h"
#include "data/simulators.h"

namespace tsg::bench {

/// Global knobs shared by every bench binary. Defaults give a laptop-scale run that
/// finishes in minutes; TSGBENCH_SCALE=<x> multiplies the budget (dataset size,
/// training epochs, evaluation repeats) toward paper fidelity.
struct BenchConfig {
  double scale = 1.0;          ///< TSGBENCH_SCALE multiplier.
  uint64_t seed = 42;          ///< TSGBENCH_SEED.
  std::string out_dir = "bench_out";  ///< TSGBENCH_OUT.

  double dataset_scale() const { return 0.02 * scale; }
  double epoch_scale() const { return 0.2 * scale; }
  int stochastic_repeats() const { return scale >= 2.0 ? 5 : 2; }
  int64_t max_eval_samples() const { return scale >= 2.0 ? 256 : 96; }
};

/// Reads TSGBENCH_SCALE / TSGBENCH_SEED / TSGBENCH_OUT and ensures out_dir exists.
BenchConfig LoadConfig();

/// One fitted-and-evaluated grid cell (long format, one row per measure) plus the
/// training time (M8).
struct GridRow {
  std::string method;
  std::string dataset;
  std::string measure;
  double mean = 0.0;
  double stddev = 0.0;
  double fit_seconds = 0.0;
};

/// Preprocesses one simulated dataset under the benchmark defaults.
core::Preprocessed PrepareDataset(data::DatasetId id, const BenchConfig& config);

/// Computes the benchmarking grid: every (method, dataset) cell is fitted and
/// evaluated as an independent task on the global thread pool (TSG_THREADS-many at
/// once), and rows are assembled in the serial dataset-major order. Every cell
/// seeds its own Rng chain from the config, so the rows are bit-identical to a
/// single-threaded run. Used by the fig1/fig5/fig8 binaries via LoadOrComputeGrid.
std::vector<GridRow> RunGrid(const BenchConfig& config,
                             const std::vector<std::string>& methods,
                             const std::vector<data::DatasetId>& datasets);

/// Runs the full benchmarking grid (methods x datasets x measure suite) and returns
/// long-format rows. Results are cached as CSV in <out_dir>/grid_cells.csv keyed by
/// the config; reruns with the same config load the cache so the Figure 1/5/8
/// binaries do not recompute each other's work. Set `force` to recompute.
std::vector<GridRow> LoadOrComputeGrid(const BenchConfig& config,
                                       const std::vector<std::string>& methods,
                                       const std::vector<data::DatasetId>& datasets,
                                       bool force = false);

/// Converts grid rows to the RankingAnalysis cell format for a set of measures
/// (training time is appended as the synthetic measure "Time" when requested).
std::vector<core::CellResult> ToCells(const std::vector<GridRow>& rows,
                                      const std::vector<std::string>& measures);

/// Distinct values preserving first-seen order.
std::vector<std::string> DistinctMeasures(const std::vector<GridRow>& rows);
std::vector<std::string> DistinctDatasets(const std::vector<GridRow>& rows);

}  // namespace tsg::bench

#endif  // TSG_BENCH_BENCH_UTIL_H_
