// Reproduces Figure 6: t-SNE and distribution-plot visualizations of real vs
// generated series. For each (method, dataset) pair the bench emits the exact data
// the figure plots (2-D t-SNE coordinates and KDE curves, as CSV under <out>/fig6_*)
// and prints two scalar summaries so the figure has checkable numbers:
//   overlap — fraction of t-SNE neighbours from the other set (0.5 = ideal mixing);
//   kdeL1   — L1 gap between the real and generated value densities (0 = ideal).

#include <cstdio>

#include "bench_util.h"
#include "core/visualize.h"
#include "io/table.h"
#include "methods/factory.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_fig6_visualization [--metrics_out=<path>]")) {
    return 2;
  }
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();

  // The paper's Figure 6 shows a representative subset; we use the datasets its
  // discussion dwells on (DLG's bimodality, Exchange's multi-peak marginals, Stock,
  // HAPT's distribution shift, Energy) and all ten methods at scale >= 2.
  const std::vector<tsg::data::DatasetId> datasets = {
      tsg::data::DatasetId::kDlg, tsg::data::DatasetId::kStock,
      tsg::data::DatasetId::kExchange, tsg::data::DatasetId::kHapt};
  std::vector<std::string> method_names = {"RGAN", "TimeGAN", "TimeVAE", "COSCI-GAN",
                                           "LS4"};
  if (config.scale >= 2.0) method_names = tsg::methods::AllMethodNames();

  tsg::core::FitOptions fit;
  fit.epoch_scale = config.epoch_scale();
  fit.seed = config.seed;

  tsg::core::VisualizeOptions vis_options;
  vis_options.max_samples_per_set = config.scale >= 2.0 ? 200 : 100;
  vis_options.tsne.iterations = config.scale >= 2.0 ? 400 : 200;
  vis_options.tsne.seed = config.seed;

  std::printf("=== Figure 6: t-SNE + distribution plots (CSV in %s) ===\n\n",
              config.out_dir.c_str());
  tsg::io::Table table({"Dataset", "Method", "t-SNE overlap (0.5=ideal)",
                        "KDE L1 (0=ideal)"});

  for (tsg::data::DatasetId id : datasets) {
    const tsg::core::Preprocessed pre = tsg::bench::PrepareDataset(id, config);
    for (const std::string& name : method_names) {
      auto method = tsg::methods::CreateMethod(name);
      TSG_CHECK(method.ok());
      if (!method.value()->Fit(pre.train, fit).ok()) continue;
      tsg::Rng rng(config.seed ^ 0xF16);
      tsg::core::Dataset generated(
          name, method.value()->Generate(vis_options.max_samples_per_set, rng));
      const tsg::core::VisualizationResult vis =
          tsg::core::Visualize(pre.train, generated, vis_options);
      const std::string prefix = config.out_dir + "/fig6_" + pre.train.name() + "_" +
                                 name;
      tsg::core::WriteVisualization(prefix, vis).ok();
      table.AddRow({pre.train.name(), name, tsg::io::Table::Num(vis.tsne_overlap, 3),
                    tsg::io::Table::Num(vis.kde_l1, 3)});
      std::fprintf(stderr, "[fig6] %s / %s done\n", pre.train.name().c_str(),
                   name.c_str());
    }
  }
  table.Print();

  std::printf(
      "\nExpected shape (paper): VAE-family methods, COSCI-GAN and RTSGAN show the\n"
      "best cloud mixing and smallest density gaps; RGAN can match a single\n"
      "distribution (small KDE L1 on some sets) yet separates under t-SNE; methods\n"
      "struggle most on DLG's bimodal and Exchange's multi-peak marginals.\n");
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
