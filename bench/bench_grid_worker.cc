// Sharded-grid worker: one process of an N-worker benchmark grid run. Workers
// share nothing but the checkpoint directory — each claims pending (method,
// dataset) cells via atomic lease files (DESIGN.md §10), computes the ones it
// wins through the store-aware harness, and checkpoints them exactly like the
// single-process grid. Launch any number against the same TSGBENCH_OUT (and
// optionally TSGBENCH_STORE_DIR, to share trained models), then run
// bench_grid_merge to assemble the summary.
//
// Flags: --methods=A,B --datasets=d1,d2 (default: full 10x10 paper grid),
// --worker_id=<label>, --lease_stale_seconds=<s>, --max_wait_seconds=<s>,
// --metrics_out=<path>.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/simulators.h"
#include "methods/factory.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  std::string methods_csv;
  std::string datasets_csv;
  tsg::bench::ShardOptions options;
  options.worker_label = "grid-worker";
  std::string value;
  tsg::bench::ConsumeFlagValue(&argc, argv, "methods", &methods_csv);
  tsg::bench::ConsumeFlagValue(&argc, argv, "datasets", &datasets_csv);
  tsg::bench::ConsumeFlagValue(&argc, argv, "worker_id", &options.worker_label);
  if (tsg::bench::ConsumeFlagValue(&argc, argv, "lease_stale_seconds", &value)) {
    options.lease_stale_seconds = std::atof(value.c_str());
  }
  if (tsg::bench::ConsumeFlagValue(&argc, argv, "max_wait_seconds", &value)) {
    options.max_wait_seconds = std::atof(value.c_str());
  }
  if (!tsg::bench::RequireNoUnknownFlags(
          argc, argv,
          "bench_grid_worker [--methods=A,B] [--datasets=d1,d2] "
          "[--worker_id=<label>] [--lease_stale_seconds=<s>] "
          "[--max_wait_seconds=<s>] [--metrics_out=<path>]")) {
    return 2;
  }
  if (argc > 1) {
    std::fprintf(stderr, "unknown argument: %s\n", argv[1]);
    return 2;
  }

  const auto methods = tsg::bench::ParseMethodList(methods_csv);
  const auto datasets = tsg::bench::ParseDatasetList(datasets_csv);
  if (!methods.ok()) {
    std::fprintf(stderr, "%s\n", methods.status().ToString().c_str());
    return 2;
  }
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 2;
  }

  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  const auto completed = tsg::bench::RunGridShard(config, methods.value(),
                                                  datasets.value(), options);
  if (!completed.ok()) {
    std::fprintf(stderr, "[%s] shard failed: %s\n",
                 options.worker_label.c_str(),
                 completed.status().ToString().c_str());
    tsg::bench::WriteMetricsSnapshot();
    return 1;
  }
  std::printf("[%s] computed %lld cells; all cells checkpointed under %s\n",
              options.worker_label.c_str(),
              static_cast<long long>(completed.value()),
              tsg::bench::CheckpointDir(config).c_str());
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
