// Reproduces Figure 8: the critical-difference analysis. A Friedman test is run over
// all (dataset, measure) blocks of the Figure 5 grid, followed by Conover post-hoc
// pairwise comparisons; methods are grouped into statistical tiers and rendered as a
// text critical-difference diagram.

#include <cstdio>

#include "bench_util.h"
#include "core/ranking.h"
#include "io/csv.h"
#include "io/table.h"
#include "methods/factory.h"

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  if (!tsg::bench::RequireNoUnknownFlags(argc, argv, "bench_fig8_critical_difference [--metrics_out=<path>]")) {
    return 2;
  }
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  const auto& methods = tsg::methods::AllMethodNames();
  const auto grid =
      tsg::bench::LoadOrComputeGrid(config, methods, tsg::data::AllDatasets());
  tsg::bench::ReportFailures(grid);
  const auto& rows = grid.rows;
  const auto measures = tsg::bench::DistinctMeasures(rows);
  const auto datasets = tsg::bench::DistinctDatasets(rows);

  tsg::core::RankingAnalysis analysis(tsg::bench::ToCells(rows, measures), methods,
                                      datasets, measures);
  const auto overall = analysis.ComputeOverall(/*alpha=*/0.05);

  std::printf("=== Figure 8: critical-difference diagram "
              "(Friedman + Conover, alpha=0.05) ===\n\n");
  std::printf("%s\n", analysis.RenderCriticalDifference(overall).c_str());

  std::printf("Conover pairwise p-values:\n");
  std::vector<std::string> header = {"vs"};
  for (const auto& m : methods) header.push_back(m);
  tsg::io::Table table(header);
  for (size_t i = 0; i < methods.size(); ++i) {
    std::vector<std::string> cells = {methods[i]};
    for (size_t j = 0; j < methods.size(); ++j) {
      cells.push_back(tsg::io::Table::Num(
          overall.conover_p(static_cast<int64_t>(i), static_cast<int64_t>(j)), 3));
    }
    table.AddRow(cells);
  }
  table.Print();

  tsg::io::WriteCsv(config.out_dir + "/fig8_conover_p.csv", methods,
                    overall.conover_p)
      .ok();

  std::printf(
      "\nExpected shape (paper): the methods separate into tiers with\n"
      "{TimeVQVAE, TimeVAE, COSCI-GAN, LS4, RTSGAN} on top, then\n"
      "{FourierFlow, AEC-GAN, TimeGAN}, then GT-GAN, with RGAN last; members\n"
      "inside the top tiers are not statistically distinguishable from each\n"
      "other but are from the lower tiers.\n");
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
