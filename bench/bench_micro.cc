// Micro-benchmarks (google-benchmark) for the substrates the paper's experiments
// stand on: dense kernels, autodiff step cost, recurrent cells, FFT, the distance
// measures, and one full training step per representative TSG method. These are the
// numbers behind the Figure 5 training-time row.

#include <benchmark/benchmark.h>

#include "ag/ops.h"
#include "base/rng.h"
#include "core/dataset.h"
#include "core/method.h"
#include "data/simulators.h"
#include "distance/distance.h"
#include "embed/tsne.h"
#include "linalg/decomp.h"
#include "linalg/matrix.h"
#include "methods/factory.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "signal/fft.h"

namespace {

using tsg::Rng;
using tsg::linalg::Matrix;

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  rng.FillNormal(m.data(), m.size());
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::linalg::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_SymmetricEigen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix a = RandomMatrix(n, n, 3);
  const Matrix spd = tsg::linalg::MatMulTransA(a, a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::linalg::SymmetricEigen(spd));
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(32);

void BM_Fft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  std::vector<tsg::signal::Complex> x(static_cast<size_t>(n));
  for (auto& v : x) v = tsg::signal::Complex(rng.Normal(), rng.Normal());
  for (auto _ : state) {
    auto copy = x;
    tsg::signal::Fft(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(125)->Arg(192);

void BM_GruCellStep(benchmark::State& state) {
  const int64_t batch = 32, n = 8, hidden = state.range(0);
  Rng rng(5);
  tsg::nn::GruCell cell(n, hidden, rng);
  const tsg::ag::Var x = tsg::ag::Var::Constant(RandomMatrix(batch, n, 6));
  for (auto _ : state) {
    tsg::ag::Var h = cell.InitialState(batch);
    benchmark::DoNotOptimize(cell.Forward(x, h));
  }
}
BENCHMARK(BM_GruCellStep)->Arg(16)->Arg(32);

void BM_AutodiffTrainingStep(benchmark::State& state) {
  // One forward+backward+Adam step of a 2-layer GRU over a 24-step sequence.
  Rng rng(7);
  tsg::nn::GruStack stack(6, 24, 2, rng);
  tsg::nn::Dense head(24, 6, rng);
  tsg::nn::Adam opt(tsg::nn::CollectParameters({&stack, &head}), 1e-3);
  std::vector<tsg::ag::Var> steps;
  for (int t = 0; t < 24; ++t) {
    steps.push_back(tsg::ag::Var::Constant(RandomMatrix(32, 6, 100 + t)));
  }
  for (auto _ : state) {
    opt.ZeroGrad();
    const auto outs = stack.Forward(steps);
    tsg::ag::Var loss = tsg::ag::MseLoss(head.Forward(outs.back()), steps[0]);
    tsg::ag::Backward(loss);
    opt.Step();
  }
}
BENCHMARK(BM_AutodiffTrainingStep);

void BM_Dtw(benchmark::State& state) {
  const int64_t l = state.range(0);
  const Matrix a = RandomMatrix(l, 6, 8);
  const Matrix b = RandomMatrix(l, 6, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::distance::DtwDistance(a, b));
  }
}
BENCHMARK(BM_Dtw)->Arg(24)->Arg(125)->Arg(192);

void BM_EuclideanDistance(benchmark::State& state) {
  const Matrix a = RandomMatrix(192, 11, 10);
  const Matrix b = RandomMatrix(192, 11, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::distance::EuclideanDistance(a, b));
  }
}
BENCHMARK(BM_EuclideanDistance);

void BM_FrechetDistance(benchmark::State& state) {
  const Matrix a = RandomMatrix(256, 16, 12);
  const Matrix b = RandomMatrix(256, 16, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::distance::FrechetDistance(a, b));
  }
}
BENCHMARK(BM_FrechetDistance);

void BM_Tsne(benchmark::State& state) {
  const Matrix data = RandomMatrix(80, 32, 14);
  tsg::embed::TsneOptions options;
  options.iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::embed::Tsne(data, options));
  }
}
BENCHMARK(BM_Tsne);

/// One abbreviated Fit per method on a tiny dataset: the relative cost ordering is
/// the Figure 5 training-time story (VAE/SSM fast, GANs slower, GT-GAN slowest).
void BM_MethodFit(benchmark::State& state, const std::string& name) {
  const tsg::core::Dataset train(
      "micro", tsg::data::SineBenchmark(32, 16, 3, /*seed=*/21));
  tsg::core::FitOptions options;
  options.epoch_scale = 0.05;
  options.batch_size = 16;
  for (auto _ : state) {
    auto method = tsg::methods::CreateMethod(name);
    benchmark::DoNotOptimize(method.value()->Fit(train, options));
  }
}
BENCHMARK_CAPTURE(BM_MethodFit, RGAN, std::string("RGAN"));
BENCHMARK_CAPTURE(BM_MethodFit, TimeGAN, std::string("TimeGAN"));
BENCHMARK_CAPTURE(BM_MethodFit, TimeVAE, std::string("TimeVAE"));
BENCHMARK_CAPTURE(BM_MethodFit, LS4, std::string("LS4"));
BENCHMARK_CAPTURE(BM_MethodFit, FourierFlow, std::string("FourierFlow"));
BENCHMARK_CAPTURE(BM_MethodFit, GT_GAN, std::string("GT-GAN"));

}  // namespace

BENCHMARK_MAIN();
