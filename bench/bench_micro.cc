// Micro-benchmarks (google-benchmark) for the substrates the paper's experiments
// stand on: dense kernels, autodiff step cost, recurrent cells, FFT, the distance
// measures, and one full training step per representative TSG method. These are the
// numbers behind the Figure 5 training-time row.
//
// In addition to the gbench suite, main() times the three parallelized hot paths
// (GEMM, per-pair DTW, the full measure suite) at 1 thread and at hardware
// concurrency and writes the timings to <out_dir>/micro_parallel.json, then times
// the kernel layer against its pre-kernel baselines (naive GEMM, scalar backend)
// and writes per-kernel GFLOP/s to <out_dir>/micro_kernels.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ag/ops.h"
#include "ag/tape.h"
#include "base/rng.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "bench_util.h"
#include "core/dataset.h"
#include "core/harness.h"
#include "core/method.h"
#include "data/simulators.h"
#include "distance/distance.h"
#include "embed/tsne.h"
#include "io/atomic_file.h"
#include "io/json.h"
#include "kernels/kernels.h"
#include "linalg/decomp.h"
#include "linalg/matrix.h"
#include "methods/factory.h"
#include "nn/dense.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "obs/metrics.h"
#include "signal/fft.h"

namespace {

using tsg::Rng;
using tsg::linalg::Matrix;

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Forces the global pool to state.range(0)-way execution for one benchmark run.
/// Registered at Arg(1) and Arg(hardware_concurrency) so `benchmark_filter=Parallel`
/// shows the thread-scaling of each wired path directly.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int n) {
    tsg::base::ThreadPool::Global().SetMaxParallelism(n);
  }
  ~ScopedParallelism() { tsg::base::ThreadPool::Global().SetMaxParallelism(0); }
};

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  rng.FillNormal(m.data(), m.size());
  return m;
}

/// The pre-kernel-layer GEMM inner loop (the PR 1 linalg::MatMul body, run
/// serially): the baseline the kernel layer's >= 2x GFLOP/s criterion is
/// measured against in micro_kernels.json.
void NaiveGemmBaseline(const Matrix& a, const Matrix& b, Matrix* out) {
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  out->SetZero();
  for (int64_t i = 0; i < m; ++i) {
    double* out_row = out->data() + i * n;
    const double* a_row = a.data() + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const double aip = a_row[p];
      if (aip == 0.0) continue;
      const double* b_row = b.data() + p * n;
      for (int64_t j = 0; j < n; ++j) out_row[j] += aip * b_row[j];
    }
  }
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::linalg::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmKernel(benchmark::State& state) {
  ScopedParallelism scoped(1);
  const int64_t n = state.range(0);
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  Matrix out(n, n);
  for (auto _ : state) {
    out.SetZero();
    tsg::kernels::Gemm(n, n, n, a.data(), n, b.data(), n, out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(tsg::kernels::BackendName());
}
BENCHMARK(BM_GemmKernel)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNaive(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  Matrix out(n, n);
  for (auto _ : state) {
    NaiveGemmBaseline(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_SymmetricEigen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix a = RandomMatrix(n, n, 3);
  const Matrix spd = tsg::linalg::MatMulTransA(a, a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::linalg::SymmetricEigen(spd));
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(32);

void BM_Fft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  std::vector<tsg::signal::Complex> x(static_cast<size_t>(n));
  for (auto& v : x) v = tsg::signal::Complex(rng.Normal(), rng.Normal());
  for (auto _ : state) {
    auto copy = x;
    tsg::signal::Fft(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(125)->Arg(192);

void BM_GruCellStep(benchmark::State& state) {
  const int64_t batch = 32, n = 8, hidden = state.range(0);
  Rng rng(5);
  tsg::nn::GruCell cell(n, hidden, rng);
  const tsg::ag::Var x = tsg::ag::Var::Constant(RandomMatrix(batch, n, 6));
  for (auto _ : state) {
    tsg::ag::Var h = cell.InitialState(batch);
    benchmark::DoNotOptimize(cell.Forward(x, h));
  }
}
BENCHMARK(BM_GruCellStep)->Arg(16)->Arg(32);

void BM_AutodiffTrainingStep(benchmark::State& state) {
  // One forward+backward+Adam step of a 2-layer GRU over a 24-step sequence.
  Rng rng(7);
  tsg::nn::GruStack stack(6, 24, 2, rng);
  tsg::nn::Dense head(24, 6, rng);
  tsg::nn::Adam opt(tsg::nn::CollectParameters({&stack, &head}), 1e-3);
  std::vector<tsg::ag::Var> steps;
  for (int t = 0; t < 24; ++t) {
    steps.push_back(tsg::ag::Var::Constant(RandomMatrix(32, 6, 100 + t)));
  }
  for (auto _ : state) {
    opt.ZeroGrad();
    const auto outs = stack.Forward(steps);
    tsg::ag::Var loss = tsg::ag::MseLoss(head.Forward(outs.back()), steps[0]);
    tsg::ag::Backward(loss);
    opt.Step();
  }
}
BENCHMARK(BM_AutodiffTrainingStep);

void BM_Dtw(benchmark::State& state) {
  const int64_t l = state.range(0);
  const Matrix a = RandomMatrix(l, 6, 8);
  const Matrix b = RandomMatrix(l, 6, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::distance::DtwDistance(a, b));
  }
}
BENCHMARK(BM_Dtw)->Arg(24)->Arg(125)->Arg(192);

void BM_EuclideanDistance(benchmark::State& state) {
  const Matrix a = RandomMatrix(192, 11, 10);
  const Matrix b = RandomMatrix(192, 11, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::distance::EuclideanDistance(a, b));
  }
}
BENCHMARK(BM_EuclideanDistance);

void BM_FrechetDistance(benchmark::State& state) {
  const Matrix a = RandomMatrix(256, 16, 12);
  const Matrix b = RandomMatrix(256, 16, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::distance::FrechetDistance(a, b));
  }
}
BENCHMARK(BM_FrechetDistance);

void BM_Tsne(benchmark::State& state) {
  const Matrix data = RandomMatrix(80, 32, 14);
  tsg::embed::TsneOptions options;
  options.iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::embed::Tsne(data, options));
  }
}
BENCHMARK(BM_Tsne);

/// One abbreviated Fit per method on a tiny dataset: the relative cost ordering is
/// the Figure 5 training-time story (VAE/SSM fast, GANs slower, GT-GAN slowest).
void BM_MethodFit(benchmark::State& state, const std::string& name) {
  const tsg::core::Dataset train(
      "micro", tsg::data::SineBenchmark(32, 16, 3, /*seed=*/21));
  tsg::core::FitOptions options;
  options.epoch_scale = 0.05;
  options.batch_size = 16;
  for (auto _ : state) {
    auto method = tsg::methods::CreateMethod(name);
    benchmark::DoNotOptimize(method.value()->Fit(train, options));
  }
}
BENCHMARK_CAPTURE(BM_MethodFit, RGAN, std::string("RGAN"));
BENCHMARK_CAPTURE(BM_MethodFit, TimeGAN, std::string("TimeGAN"));
BENCHMARK_CAPTURE(BM_MethodFit, TimeVAE, std::string("TimeVAE"));
BENCHMARK_CAPTURE(BM_MethodFit, LS4, std::string("LS4"));
BENCHMARK_CAPTURE(BM_MethodFit, FourierFlow, std::string("FourierFlow"));
BENCHMARK_CAPTURE(BM_MethodFit, GT_GAN, std::string("GT-GAN"));

void BM_MatMulParallel(benchmark::State& state) {
  ScopedParallelism scoped(static_cast<int>(state.range(0)));
  const Matrix a = RandomMatrix(192, 192, 15);
  const Matrix b = RandomMatrix(192, 192, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsg::linalg::MatMul(a, b));
  }
}
BENCHMARK(BM_MatMulParallel)->Arg(1)->Arg(HardwareThreads());

void BM_DtwPairsParallel(benchmark::State& state) {
  ScopedParallelism scoped(static_cast<int>(state.range(0)));
  // The DTW measure's inner loop: one warped distance per (real, generated) pair.
  std::vector<Matrix> real, gen;
  for (int i = 0; i < 16; ++i) {
    real.push_back(RandomMatrix(96, 4, 200 + i));
    gen.push_back(RandomMatrix(96, 4, 300 + i));
  }
  for (auto _ : state) {
    const double total = tsg::base::ParallelSum(16, 1, [&](int64_t i) {
      return tsg::distance::DtwIndependent(real[static_cast<size_t>(i)],
                                           gen[static_cast<size_t>(i)]);
    });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_DtwPairsParallel)->Arg(1)->Arg(HardwareThreads());

void BM_MeasureSuiteParallel(benchmark::State& state) {
  ScopedParallelism scoped(static_cast<int>(state.range(0)));
  const tsg::core::Dataset real("r", tsg::data::SineBenchmark(24, 16, 2, 41));
  const tsg::core::Dataset test("t", tsg::data::SineBenchmark(8, 16, 2, 42));
  const tsg::core::Dataset gen("g", tsg::data::SineBenchmark(24, 16, 2, 43));
  tsg::core::HarnessOptions options;
  options.stochastic_repeats = 2;
  options.embedder.epochs = 2;
  tsg::core::Harness harness(options);
  harness.EvaluateGenerated(real, test, gen, "micro");  // Warm the embedder cache.
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.EvaluateGenerated(real, test, gen, "micro"));
  }
}
BENCHMARK(BM_MeasureSuiteParallel)->Arg(1)->Arg(HardwareThreads());

/// Best-of-`reps` wall time for `fn` at the given pool width.
double MinSeconds(int parallelism, int reps, const std::function<void()>& fn) {
  ScopedParallelism scoped(parallelism);
  fn();  // Warm-up.
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    tsg::Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

/// Times the parallelized hot paths at 1 thread vs hardware concurrency and writes
/// <out_dir>/micro_parallel.json (the ISSUE acceptance artifact for the >= 1.5x
/// measure-suite speedup criterion on multi-core hosts).
void WriteParallelTimings() {
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  const int hw = HardwareThreads();

  const Matrix ga = RandomMatrix(192, 192, 15);
  const Matrix gb = RandomMatrix(192, 192, 16);
  std::vector<Matrix> real, gen;
  for (int i = 0; i < 16; ++i) {
    real.push_back(RandomMatrix(96, 4, 200 + i));
    gen.push_back(RandomMatrix(96, 4, 300 + i));
  }
  const tsg::core::Dataset suite_real("r", tsg::data::SineBenchmark(24, 16, 2, 41));
  const tsg::core::Dataset suite_test("t", tsg::data::SineBenchmark(8, 16, 2, 42));
  const tsg::core::Dataset suite_gen("g", tsg::data::SineBenchmark(24, 16, 2, 43));
  tsg::core::HarnessOptions options;
  options.stochastic_repeats = 2;
  options.embedder.epochs = 2;
  tsg::core::Harness harness(options);
  harness.EvaluateGenerated(suite_real, suite_test, suite_gen, "micro");

  struct Case {
    std::string name;
    std::function<void()> fn;
  };
  const std::vector<Case> cases = {
      {"gemm_192", [&] { benchmark::DoNotOptimize(tsg::linalg::MatMul(ga, gb)); }},
      {"dtw_pairs_16",
       [&] {
         const double total = tsg::base::ParallelSum(16, 1, [&](int64_t i) {
           return tsg::distance::DtwIndependent(real[static_cast<size_t>(i)],
                                                gen[static_cast<size_t>(i)]);
         });
         benchmark::DoNotOptimize(total);
       }},
      {"measure_suite",
       [&] {
         benchmark::DoNotOptimize(
             harness.EvaluateGenerated(suite_real, suite_test, suite_gen, "micro"));
       }},
  };

  tsg::io::JsonWriter json;
  json.BeginObject();
  json.Key("hardware_concurrency").Int(hw);
  json.Key("results").BeginArray();
  for (const Case& c : cases) {
    const double t1 = MinSeconds(1, 3, c.fn);
    const double thw = MinSeconds(hw, 3, c.fn);
    json.BeginObject();
    json.Key("name").String(c.name);
    json.Key("threads").Int(1);
    json.Key("seconds").Number(t1);
    json.EndObject();
    json.BeginObject();
    json.Key("name").String(c.name);
    json.Key("threads").Int(hw);
    json.Key("seconds").Number(thw);
    json.Key("speedup_vs_1").Number(t1 / thw);
    json.EndObject();
    std::fprintf(stderr, "[micro] %-14s 1t %.4fs  %dt %.4fs  speedup %.2fx\n",
                 c.name.c_str(), t1, hw, thw, t1 / thw);
  }
  json.EndArray();
  json.EndObject();
  const std::string path = config.out_dir + "/micro_parallel.json";
  const tsg::Status s = tsg::io::WriteFileAtomic(path, json.str() + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "[micro] write failed: %s\n", s.ToString().c_str());
  } else {
    std::fprintf(stderr, "[micro] wrote %s\n", path.c_str());
  }
}

/// Times each kernel against its pre-kernel-layer baseline at 1 thread and
/// writes <out_dir>/micro_kernels.json: per-shape GEMM GFLOP/s for the naive
/// loop, the scalar kernel backend, and the active backend (the scalar-vs-SIMD
/// comparison), plus dot/sqdist throughput. `speedup_vs_naive` on the GEMM rows
/// is the ISSUE acceptance number (>= 2x on at least one shape).
void WriteKernelTimings() {
  namespace kernels = tsg::kernels;
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();

  tsg::io::JsonWriter json;
  json.BeginObject();
  json.Key("simd_enabled").Bool(kernels::SimdEnabled());
  json.Key("backend").String(kernels::BackendName());

  json.Key("gemm").BeginArray();
  for (const int64_t n : {int64_t{64}, int64_t{128}, int64_t{256}, int64_t{384}}) {
    const Matrix a = RandomMatrix(n, n, 400 + n);
    const Matrix b = RandomMatrix(n, n, 500 + n);
    Matrix out(n, n);
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    const double t_naive = MinSeconds(1, 5, [&] {
      NaiveGemmBaseline(a, b, &out);
      benchmark::DoNotOptimize(out.data());
    });
    const double t_scalar = MinSeconds(1, 5, [&] {
      out.SetZero();
      kernels::scalar::Gemm(n, n, n, a.data(), n, b.data(), n, out.data(), n);
      benchmark::DoNotOptimize(out.data());
    });
    const double t_active = MinSeconds(1, 5, [&] {
      out.SetZero();
      kernels::Gemm(n, n, n, a.data(), n, b.data(), n, out.data(), n);
      benchmark::DoNotOptimize(out.data());
    });
    json.BeginObject();
    json.Key("shape").Int(static_cast<int>(n));
    json.Key("naive_gflops").Number(flops / t_naive / 1e9);
    json.Key("scalar_kernel_gflops").Number(flops / t_scalar / 1e9);
    json.Key("active_kernel_gflops").Number(flops / t_active / 1e9);
    json.Key("speedup_vs_naive").Number(t_naive / t_active);
    json.Key("simd_speedup_vs_scalar_kernel").Number(t_scalar / t_active);
    json.EndObject();
    std::fprintf(stderr,
                 "[micro] gemm_%-4lld naive %6.2f  scalar %6.2f  %s %6.2f GFLOP/s"
                 "  (%.2fx vs naive)\n",
                 static_cast<long long>(n), flops / t_naive / 1e9,
                 flops / t_scalar / 1e9, kernels::BackendName(),
                 flops / t_active / 1e9, t_naive / t_active);
  }
  json.EndArray();

  // Streaming primitives: repeat the call enough times per sample to be
  // measurable at microsecond resolution.
  const int64_t kVecLen = 4096;
  const int kVecReps = 2048;
  const Matrix va = RandomMatrix(1, kVecLen, 600);
  const Matrix vb = RandomMatrix(1, kVecLen, 601);
  json.Key("primitives").BeginArray();
  {
    const double t = MinSeconds(1, 5, [&] {
      double s = 0.0;
      for (int r = 0; r < kVecReps; ++r)
        s += kernels::Dot(va.data(), vb.data(), kVecLen);
      benchmark::DoNotOptimize(s);
    });
    json.BeginObject();
    json.Key("name").String("dot_4096");
    json.Key("gflops").Number(2.0 * kVecLen * kVecReps / t / 1e9);
    json.EndObject();
  }
  {
    const double t = MinSeconds(1, 5, [&] {
      double s = 0.0;
      for (int r = 0; r < kVecReps; ++r)
        s += kernels::SquaredDistance(va.data(), vb.data(), kVecLen);
      benchmark::DoNotOptimize(s);
    });
    json.BeginObject();
    json.Key("name").String("sqdist_4096");
    json.Key("gflops").Number(3.0 * kVecLen * kVecReps / t / 1e9);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const std::string path = config.out_dir + "/micro_kernels.json";
  const tsg::Status s = tsg::io::WriteFileAtomic(path, json.str() + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "[micro] write failed: %s\n", s.ToString().c_str());
  } else {
    std::fprintf(stderr, "[micro] wrote %s\n", path.c_str());
  }
}

/// Restores the hot-path configuration (tape arena + fused forward) on exit.
class ScopedHotPath {
 public:
  ScopedHotPath(bool arena, bool fusion)
      : prev_arena_(tsg::ag::ArenaEnabled()),
        prev_fusion_(tsg::nn::FusedForward()) {
    tsg::ag::SetArenaEnabled(arena);
    tsg::nn::SetFusedForward(fusion);
  }
  ~ScopedHotPath() {
    tsg::ag::SetArenaEnabled(prev_arena_);
    tsg::nn::SetFusedForward(prev_fusion_);
  }

 private:
  bool prev_arena_;
  bool prev_fusion_;
};

/// Wall seconds and exact per-training-step seconds for one Fit measurement.
struct FitTiming {
  double fit_seconds = 0.0;
  double step_seconds = 0.0;  ///< Mean over every GuardedStep of every phase.
  int64_t steps = 0;
};

/// Times one abbreviated Fit per method with the training hot path disabled
/// (heap autodiff nodes, unfused layers — the pre-arena behavior) and enabled
/// (pooled tape + fused epilogues), and writes <out_dir>/micro_fit.json.
/// `step_speedup` is the ratio of mean per-step seconds, taken from the
/// `train.*.step_seconds` timers GuardedStep records (so dataset prep,
/// sampling, and generation overhead inside Fit don't dilute it); step counts
/// are identical in both configurations by construction (same options, same
/// seeds). `step_speedup` >= 2x on at least three methods is the ISSUE
/// acceptance number; total Fit wall time rides along for context.
void WriteFitTimings() {
  const tsg::bench::BenchConfig config = tsg::bench::LoadConfig();
  const tsg::core::Dataset train(
      "micro", tsg::data::SineBenchmark(32, 16, 3, /*seed=*/21));
  tsg::core::FitOptions options;
  options.epoch_scale = 0.05;
  options.batch_size = 16;

  const char* kMethods[] = {"RGAN",        "TimeGAN", "TimeVAE",
                            "LS4",         "FourierFlow", "GT-GAN"};

  auto measure = [&](const char* name, bool optimized) {
    ScopedHotPath scoped(optimized, optimized);
    ScopedParallelism serial(1);  // Per-step cost, not thread scaling.
    FitTiming best;
    best.fit_seconds = 1e300;
    best.step_seconds = 1e300;
    // Best-of-reps on fit and per-step time *independently*: both are min
    // estimators of the same deterministic work, and coupling them would let
    // one noisy rep pollute the other statistic.
    for (int rep = 0; rep < 7; ++rep) {
      auto method = tsg::methods::CreateMethod(name);
      tsg::obs::MetricRegistry::Global().Reset();
      tsg::Stopwatch watch;
      benchmark::DoNotOptimize(method.value()->Fit(train, options));
      const double fit_seconds = watch.ElapsedSeconds();
      double step_sum = 0.0;
      int64_t step_count = 0;
      tsg::obs::MetricRegistry::Global().ForEachTimer(
          [&](const std::string& timer, const tsg::obs::Histogram& h) {
            const std::string suffix = ".step_seconds";
            if (timer.size() > suffix.size() &&
                timer.compare(timer.size() - suffix.size(), suffix.size(),
                              suffix) == 0) {
              step_sum += h.sum();
              step_count += h.count();
            }
          });
      best.fit_seconds = std::min(best.fit_seconds, fit_seconds);
      const double step_mean = step_count > 0 ? step_sum / step_count : 0.0;
      if (rep == 0 || step_mean < best.step_seconds) {
        best.step_seconds = step_mean;
        best.steps = step_count;
      }
    }
    return best;
  };

  tsg::io::JsonWriter json;
  json.BeginObject();
  json.Key("backend").String(tsg::kernels::BackendName());
  json.Key("baseline").String("arena off, fusion off (heap autodiff nodes)");
  json.Key("optimized").String("arena on, fusion on");
  json.Key("methods").BeginArray();
  int at_least_2x = 0;
  for (const char* name : kMethods) {
    const FitTiming base = measure(name, /*optimized=*/false);
    const FitTiming opt = measure(name, /*optimized=*/true);
    const double step_speedup =
        opt.step_seconds > 0.0 ? base.step_seconds / opt.step_seconds : 0.0;
    at_least_2x += step_speedup >= 2.0 ? 1 : 0;
    json.BeginObject();
    json.Key("name").String(name);
    json.Key("steps").Int(static_cast<int>(opt.steps));
    json.Key("baseline_step_seconds").Number(base.step_seconds);
    json.Key("optimized_step_seconds").Number(opt.step_seconds);
    json.Key("step_speedup").Number(step_speedup);
    json.Key("baseline_fit_seconds").Number(base.fit_seconds);
    json.Key("optimized_fit_seconds").Number(opt.fit_seconds);
    json.Key("fit_speedup").Number(base.fit_seconds / opt.fit_seconds);
    json.EndObject();
    std::fprintf(stderr,
                 "[micro] fit %-12s step %9.1fus -> %9.1fus (%.2fx)  "
                 "fit %7.4fs -> %7.4fs (%.2fx)\n",
                 name, base.step_seconds * 1e6, opt.step_seconds * 1e6,
                 step_speedup, base.fit_seconds, opt.fit_seconds,
                 base.fit_seconds / opt.fit_seconds);
  }
  json.EndArray();
  json.Key("methods_at_or_above_2x").Int(at_least_2x);
  json.EndObject();

  const std::string path = config.out_dir + "/micro_fit.json";
  const tsg::Status s = tsg::io::WriteFileAtomic(path, json.str() + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "[micro] write failed: %s\n", s.ToString().c_str());
  } else {
    std::fprintf(stderr, "[micro] wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  tsg::bench::ParseBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteParallelTimings();
  WriteKernelTimings();
  WriteFitTimings();
  tsg::bench::WriteMetricsSnapshot();
  return 0;
}
